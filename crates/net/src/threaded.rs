//! Real-thread runtime: one OS thread per process, crossbeam FIFO channels,
//! event-driven end to end — no polling loop anywhere.
//!
//! This substrate exists for experiment E9/E15 (wall-clock throughput of
//! the register under real threads) and to demonstrate that the sans-IO
//! automata are substrate-independent. Each process owns an unbounded
//! crossbeam channel as its inbox; since a crossbeam channel delivers any
//! single producer's messages in send order, the per-pair FIFO property the
//! protocol relies on holds. There is no determinism — correctness
//! assertions belong on the simulator, throughput measurements here — but
//! the full driver surface of [`crate::substrate::Substrate`] is supported.
//!
//! Every wait in the runtime is a blocking wait on a channel or condvar;
//! wakeups come from the peer that produced the work:
//!
//! * **Workers** block in `recv()` on their inbox. Everything that can
//!   happen to a process — deliveries, control messages, *and timer
//!   firings* — arrives as an inbox message, so the worker loop has no
//!   deadline arithmetic and never spins.
//! * **Timers**: a worker registers `set_timer(d, id)` with the shared
//!   [`TimerWheel`] (one dedicated thread for the whole cluster, asleep
//!   until the earliest deadline); at `d × tick` of wall clock the wheel
//!   sends `Ctl::Timer` back into the worker's inbox. Firings carry the
//!   worker's incarnation number: firings armed before a restart are
//!   discarded on receipt, matching the simulator's incarnation rule.
//! * **Outputs / pump**: workers send `(time, pid, output)` into one
//!   shared hub; [`crate::substrate::Substrate::pump`] blocks directly on
//!   it up to `pump_timeout`, so [`Pumped::Idle`] means provably
//!   no-output-for-the-window rather than poll jitter.
//! * **Link faults**: consulted on the *sender* side. Drops and
//!   duplicates act immediately; `extra_delay` hands the message to the
//!   timer wheel as a per-link deferred delivery instead of sleeping the
//!   worker — other destinations of the same sender are unaffected. Every
//!   later send on a delayed link (even after the fault is cleared) is
//!   clamped behind the last deferred delivery, so per-link FIFO among
//!   surviving messages is preserved, mirroring the simulator's
//!   `(now + extra).max(last + 1)` clamp.
//! * **Crash recovery**: a restart control message replaces the worker's
//!   automaton in place, bumps its incarnation (stale timer firings are
//!   ignored on receipt), un-crashes it, and runs `on_start` — the inbox
//!   channel and thread survive, so peers keep a working route.
//! * **Shutdown**: `stop` (and `Drop`) delivers stop controls, halts the
//!   timer wheel (discarding deferred work), and parks on an exit latch
//!   that each worker signals on the way out — a condvar wait bounded by
//!   `join_timeout`, not a join-poll.
//!
//! Metrics accounting is identical to the simulator's: a faulted send
//! counts as sent no matter what the fault does to it, a drop adds one to
//! `messages_dropped`, a duplicate is one send delivered twice, and a
//! delayed message is one send delivered once (later).

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::batch::{BatchPolicy, LinkBatcher};
use crate::corruption::FaultPlan;
use crate::metrics::NetMetrics;
use crate::nemesis::LinkFault;
use crate::process::{Automaton, Ctx, ProcessId, ENV};
use crate::substrate::{Backend, Outputs, Pumped, Substrate, SubstrateConfig};
use crate::timer_wheel::{TimerWheel, TimerWheelThread};
use crate::trace::Trace;

enum Ctl<M, O> {
    Msg {
        from: ProcessId,
        msg: M,
    },
    /// One wire frame carrying ≥ 2 coalesced messages from the same
    /// directed link, in send order (batching only).
    Batch {
        from: ProcessId,
        msgs: Vec<M>,
    },
    /// A timer firing routed back from the wheel; `incarnation` tags the
    /// worker lifetime that armed it so stale firings die on receipt.
    Timer {
        id: u64,
        incarnation: u64,
    },
    /// Tick-watermark flush of the worker's own pending link batches,
    /// routed back from the wheel (batching only).
    FlushLinks,
    Corrupt,
    Crash,
    Restart(Box<dyn Automaton<M, O>>),
    Stop,
}

/// What the link-fault table decided for one send.
enum SendPlan {
    /// Deliver now (possibly twice).
    Direct { dup: bool },
    /// The fault ate the message.
    Dropped,
    /// Hand to the timer wheel: deliver at tick `at` (and, when
    /// duplicated, again at `dup_at`).
    Defer { at: u64, dup_at: Option<u64> },
}

/// Per-directed-link fault state. `fault` is what the nemesis installed;
/// the other two fields keep FIFO while deferred deliveries are in flight:
/// as long as `deferred_pending > 0`, *every* later send on the link is
/// deferred behind `last_fire_tick` (even a fault-free one after the fault
/// was cleared), because a direct send would overtake the queued ones.
#[derive(Default)]
struct LinkState {
    fault: Option<LinkFault>,
    deferred_pending: usize,
    last_fire_tick: u64,
}

/// Shared per-directed-link fault table. The `AtomicBool` fast path keeps
/// the fault-free hot loop lock-free: workers only take the mutex while at
/// least one fault is installed or a deferred delivery is still in flight.
struct LinkFaults {
    any_active: AtomicBool,
    map: Mutex<HashMap<(ProcessId, ProcessId), LinkState>>,
}

impl LinkFaults {
    fn new() -> Self {
        Self { any_active: AtomicBool::new(false), map: Mutex::new(HashMap::new()) }
    }

    fn set(&self, from: ProcessId, to: ProcessId, fault: Option<LinkFault>) {
        if let Ok(mut m) = self.map.lock() {
            match fault {
                Some(f) => m.entry((from, to)).or_default().fault = Some(f),
                None => {
                    if let Some(st) = m.get_mut(&(from, to)) {
                        st.fault = None;
                        if st.deferred_pending == 0 {
                            m.remove(&(from, to));
                        }
                    }
                }
            }
            Self::refresh_active(&self.any_active, &m);
        }
    }

    fn refresh_active(flag: &AtomicBool, m: &HashMap<(ProcessId, ProcessId), LinkState>) {
        let active = m.values().any(|st| st.fault.is_some() || st.deferred_pending > 0);
        flag.store(active, Ordering::Release);
    }

    /// Decide the fate of one send on `(from, to)` at tick `now`.
    /// Deferred sends reserve their delivery slots here, under the lock,
    /// so concurrent senders on the same link serialize their clamps.
    fn plan(&self, from: ProcessId, to: ProcessId, now: u64, rng: &mut StdRng) -> SendPlan {
        if !self.any_active.load(Ordering::Acquire) {
            return SendPlan::Direct { dup: false };
        }
        let Ok(mut m) = self.map.lock() else {
            return SendPlan::Direct { dup: false };
        };
        let Some(st) = m.get_mut(&(from, to)) else {
            return SendPlan::Direct { dup: false };
        };
        let (mut dup, mut extra) = (false, 0u64);
        if let Some(f) = st.fault {
            if f.drop_rate > 0.0 && rng.gen_bool(f.drop_rate.min(1.0)) {
                return SendPlan::Dropped;
            }
            dup = f.dup_rate > 0.0 && rng.gen_bool(f.dup_rate.min(1.0));
            extra = f.extra_delay;
        }
        if extra == 0 && st.deferred_pending == 0 {
            return SendPlan::Direct { dup };
        }
        // Same monotone clamp as the simulator's channel: never before
        // `now + extra`, never at-or-before the previous delivery.
        let at = (now + extra).max(st.last_fire_tick + 1);
        st.last_fire_tick = at;
        st.deferred_pending += 1;
        let dup_at = dup.then(|| {
            st.last_fire_tick = at + 1;
            st.deferred_pending += 1;
            at + 1
        });
        SendPlan::Defer { at, dup_at }
    }

    /// One deferred delivery on `(from, to)` left the wheel (called by the
    /// wheel thread *after* the message is in the destination inbox, so a
    /// sender observing `deferred_pending == 0` cannot overtake it).
    fn deferred_done(&self, from: ProcessId, to: ProcessId) {
        if let Ok(mut m) = self.map.lock() {
            if let Some(st) = m.get_mut(&(from, to)) {
                st.deferred_pending = st.deferred_pending.saturating_sub(1);
                if st.fault.is_none() && st.deferred_pending == 0 {
                    m.remove(&(from, to));
                }
            }
            Self::refresh_active(&self.any_active, &m);
        }
    }
}

/// Lock-free counters shared by all workers; ENV tallies live in the
/// extra slot at index `n`.
struct SharedMetrics {
    sent: AtomicU64,
    delivered: AtomicU64,
    dropped: AtomicU64,
    events: AtomicU64,
    frames_sent: AtomicU64,
    frames_delivered: AtomicU64,
    sent_by: Vec<AtomicU64>,
    received_by: Vec<AtomicU64>,
}

impl SharedMetrics {
    fn new(n: usize) -> Self {
        Self {
            sent: AtomicU64::new(0),
            delivered: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            events: AtomicU64::new(0),
            frames_sent: AtomicU64::new(0),
            frames_delivered: AtomicU64::new(0),
            sent_by: (0..=n).map(|_| AtomicU64::new(0)).collect(),
            received_by: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn record_send(&self, from: ProcessId) {
        self.sent.fetch_add(1, Ordering::Relaxed);
        self.frames_sent.fetch_add(1, Ordering::Relaxed);
        let slot = if from == ENV { self.sent_by.len() - 1 } else { from };
        self.sent_by[slot].fetch_add(1, Ordering::Relaxed);
    }

    /// A logical send whose wire frame is accounted when the frame ships.
    fn record_logical_send(&self, from: ProcessId) {
        self.sent.fetch_add(1, Ordering::Relaxed);
        let slot = if from == ENV { self.sent_by.len() - 1 } else { from };
        self.sent_by[slot].fetch_add(1, Ordering::Relaxed);
    }

    fn record_frame_sent(&self) {
        self.frames_sent.fetch_add(1, Ordering::Relaxed);
    }

    fn record_delivery(&self, to: ProcessId) {
        self.delivered.fetch_add(1, Ordering::Relaxed);
        self.frames_delivered.fetch_add(1, Ordering::Relaxed);
        self.received_by[to].fetch_add(1, Ordering::Relaxed);
    }

    /// One delivered frame carrying `batched` logical messages.
    fn record_batch_delivery(&self, to: ProcessId, batched: u64) {
        self.delivered.fetch_add(batched, Ordering::Relaxed);
        self.frames_delivered.fetch_add(1, Ordering::Relaxed);
        self.received_by[to].fetch_add(batched, Ordering::Relaxed);
    }

    fn snapshot(&self) -> NetMetrics {
        let mut m = NetMetrics {
            messages_sent: self.sent.load(Ordering::Relaxed),
            messages_delivered: self.delivered.load(Ordering::Relaxed),
            messages_dropped: self.dropped.load(Ordering::Relaxed),
            events_processed: self.events.load(Ordering::Relaxed),
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            frames_delivered: self.frames_delivered.load(Ordering::Relaxed),
            ..NetMetrics::default()
        };
        let env_slot = self.sent_by.len() - 1;
        for (pid, c) in self.sent_by.iter().enumerate() {
            let v = c.load(Ordering::Relaxed);
            if v > 0 {
                let key = if pid == env_slot { ENV } else { pid };
                m.sent_by.insert(key, v);
            }
        }
        for (pid, c) in self.received_by.iter().enumerate() {
            let v = c.load(Ordering::Relaxed);
            if v > 0 {
                m.received_by.insert(pid, v);
            }
        }
        m
    }
}

/// Single MPMC hub carrying every worker's outputs, so `pump` blocks on
/// one wait instead of sweeping per-process queues. Per-pid receives
/// (`recv_output`) coexist with pump by rescanning the queue on every
/// wakeup; an item consumed by neither party stays queued.
struct OutputHub<O> {
    inner: Mutex<HubInner<O>>,
    cond: Condvar,
}

struct HubInner<O> {
    queue: VecDeque<(u64, ProcessId, O)>,
    /// Waiting receivers; pushes skip the condvar syscall when zero.
    waiting: usize,
    /// Live worker count; when it hits zero, blocked receivers give up.
    producers: usize,
}

impl<O> OutputHub<O> {
    fn new(producers: usize) -> Self {
        Self {
            inner: Mutex::new(HubInner { queue: VecDeque::new(), waiting: 0, producers }),
            cond: Condvar::new(),
        }
    }

    fn push(&self, item: (u64, ProcessId, O)) {
        let mut inner = self.inner.lock().expect("hub lock");
        inner.queue.push_back(item);
        if inner.waiting > 0 {
            drop(inner);
            // notify_all, not notify_one: per-pid waiters must rescan even
            // when the item is not theirs, else a pid-B item could absorb
            // the only wakeup while pid-A's waiter sleeps on.
            self.cond.notify_all();
        }
    }

    fn producer_gone(&self) {
        let mut inner = self.inner.lock().expect("hub lock");
        inner.producers = inner.producers.saturating_sub(1);
        if inner.producers == 0 && inner.waiting > 0 {
            drop(inner);
            self.cond.notify_all();
        }
    }

    /// Wait for the next output from any process, up to `deadline`.
    fn recv_any(&self, deadline: Instant) -> Option<(u64, ProcessId, O)> {
        let mut inner = self.inner.lock().expect("hub lock");
        loop {
            if let Some(item) = inner.queue.pop_front() {
                return Some(item);
            }
            if inner.producers == 0 {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            inner.waiting += 1;
            let (guard, _) = self.cond.wait_timeout(inner, deadline - now).expect("hub wait");
            inner = guard;
            inner.waiting -= 1;
        }
    }

    /// Wait for the next output *from `pid`*, up to `deadline`; outputs of
    /// other processes are left queued for their own consumers.
    fn recv_for(&self, pid: ProcessId, deadline: Instant) -> Option<O> {
        let mut inner = self.inner.lock().expect("hub lock");
        loop {
            if let Some(at) = inner.queue.iter().position(|&(_, p, _)| p == pid) {
                return inner.queue.remove(at).map(|(_, _, o)| o);
            }
            if inner.producers == 0 {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            inner.waiting += 1;
            let (guard, _) = self.cond.wait_timeout(inner, deadline - now).expect("hub wait");
            inner = guard;
            inner.waiting -= 1;
        }
    }

    /// Non-blocking variant of [`OutputHub::recv_for`].
    fn try_recv_for(&self, pid: ProcessId) -> Option<O> {
        let mut inner = self.inner.lock().expect("hub lock");
        inner
            .queue
            .iter()
            .position(|&(_, p, _)| p == pid)
            .and_then(|at| inner.queue.remove(at))
            .map(|(_, _, o)| o)
    }
}

/// Counts workers still running; `stop` parks here instead of join-polling.
struct ExitLatch {
    remaining: Mutex<usize>,
    cond: Condvar,
}

impl ExitLatch {
    fn new(n: usize) -> Self {
        Self { remaining: Mutex::new(n), cond: Condvar::new() }
    }

    fn arrive(&self) {
        let mut r = self.remaining.lock().expect("latch lock");
        *r = r.saturating_sub(1);
        if *r == 0 {
            self.cond.notify_all();
        }
    }

    /// Wait until every worker arrived or `deadline` passes; returns
    /// whether all arrived.
    fn wait_all(&self, deadline: Instant) -> bool {
        let mut r = self.remaining.lock().expect("latch lock");
        while *r > 0 {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self.cond.wait_timeout(r, deadline - now).expect("latch wait");
            r = guard;
        }
        true
    }
}

/// Everything one worker thread needs; grouped to keep the spawn loop flat.
struct Worker<M, O> {
    pid: ProcessId,
    auto: Box<dyn Automaton<M, O>>,
    rx: Receiver<Ctl<M, O>>,
    /// Sender onto our own inbox, cloned into wheel actions for timers.
    self_tx: Sender<Ctl<M, O>>,
    peers: Vec<Sender<Ctl<M, O>>>,
    out: Arc<OutputHub<O>>,
    wheel: TimerWheel,
    metrics: Arc<SharedMetrics>,
    links: Arc<LinkFaults>,
    trace: Option<Arc<Mutex<Trace>>>,
    epoch: Instant,
    tick: Duration,
    rng: StdRng,
    /// Bumped on restart; `Ctl::Timer` firings from older incarnations
    /// are discarded on receipt (the simulator's incarnation rule).
    incarnation: u64,
    /// Peers with a parked receiver awaiting a wake at the end of the
    /// current dispatch (reused across dispatches to avoid allocation).
    wake_buf: Vec<ProcessId>,
    /// Per-link coalescing policy (disabled ⇒ the pre-batching hot path).
    batch: BatchPolicy,
    /// This worker's pending outgoing link queues (batching only).
    batcher: LinkBatcher<M>,
    /// Whether a `FlushLinks` wheel entry is outstanding; pending batched
    /// messages always have one, so they cannot linger unsent.
    flush_armed: bool,
}

impl<M, O> Worker<M, O>
where
    M: Clone + std::fmt::Debug + Send + 'static,
    O: Send + 'static,
{
    fn ticks(&self) -> u64 {
        ticks_since(self.epoch, self.tick)
    }

    fn run(mut self, latch: Arc<ExitLatch>) {
        struct Arrive(Arc<ExitLatch>);
        impl Drop for Arrive {
            fn drop(&mut self) {
                self.0.arrive();
            }
        }
        let _arrive = Arrive(Arc::clone(&latch));
        let hub = Arc::clone(&self.out);
        struct ProducerGone<O>(Arc<OutputHub<O>>);
        impl<O> Drop for ProducerGone<O> {
            fn drop(&mut self) {
                self.0.producer_gone();
            }
        }
        let _gone = ProducerGone(hub);

        let mut crashed = false;
        let now = self.ticks();
        self.dispatch(now, |auto, ctx| auto.on_start(ctx));

        // The whole loop is one blocking recv: deliveries, controls, and
        // timer firings all arrive as inbox messages, so the worker never
        // computes a deadline and never wakes without work.
        loop {
            match self.rx.recv() {
                Err(_) | Ok(Ctl::Stop) => return,
                Ok(Ctl::Crash) => {
                    crashed = true;
                    // Armed timers stay in the wheel; their firings are
                    // discarded below while `crashed` (and by incarnation
                    // after a restart) — same as the simulator consuming a
                    // crashed pid's timer events silently.
                }
                Ok(Ctl::Corrupt) => {
                    self.auto.corrupt(&mut self.rng);
                }
                Ok(Ctl::Restart(auto)) => {
                    // Crash recovery with state loss: fresh automaton, new
                    // incarnation (old firings die on receipt), inbox and
                    // thread reused.
                    self.auto = auto;
                    crashed = false;
                    self.incarnation += 1;
                    let now = self.ticks();
                    self.dispatch(now, |auto, ctx| auto.on_start(ctx));
                }
                Ok(Ctl::Timer { id, incarnation }) => {
                    if crashed || incarnation != self.incarnation {
                        continue;
                    }
                    self.metrics.events.fetch_add(1, Ordering::Relaxed);
                    let now = self.ticks();
                    self.dispatch(now, |auto, ctx| auto.on_timer(id, ctx));
                }
                Ok(Ctl::FlushLinks) => {
                    // Tick watermark: ship every pending link queue. Pending
                    // batches are messages already in the channel, so they
                    // flush even while this worker is crashed — a crashed
                    // *destination* drops them on receipt, as usual.
                    self.flush_armed = false;
                    let now = self.ticks();
                    for ((_, to), queue) in self.batcher.drain_all() {
                        self.send_frame(to, queue, now);
                    }
                    for to in self.wake_buf.drain(..) {
                        self.peers[to].wake();
                    }
                }
                Ok(Ctl::Batch { from, msgs }) => {
                    if crashed {
                        self.metrics.dropped.fetch_add(msgs.len() as u64, Ordering::Relaxed);
                        continue;
                    }
                    self.metrics.events.fetch_add(1, Ordering::Relaxed);
                    self.metrics.record_batch_delivery(self.pid, msgs.len() as u64);
                    let now = self.ticks();
                    if let Some(trace) = &self.trace {
                        if let Ok(mut t) = trace.lock() {
                            for msg in &msgs {
                                t.record(now, from, self.pid, || format!("{msg:?}"));
                            }
                        }
                    }
                    // One shared context for the whole frame: replies and
                    // acks produced while applying it coalesce into outgoing
                    // frames of their own (batch-in → batch-out).
                    self.dispatch(now, |auto, ctx| {
                        for msg in msgs {
                            auto.on_message(from, msg, ctx);
                        }
                    });
                }
                Ok(Ctl::Msg { from, msg }) => {
                    if crashed {
                        self.metrics.dropped.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    self.metrics.events.fetch_add(1, Ordering::Relaxed);
                    self.metrics.record_delivery(self.pid);
                    let now = self.ticks();
                    if let Some(trace) = &self.trace {
                        if let Ok(mut t) = trace.lock() {
                            t.record(now, from, self.pid, || format!("{msg:?}"));
                        }
                    }
                    self.dispatch(now, |auto, ctx| auto.on_message(from, msg, ctx));
                }
            }
        }
    }

    /// Run one callback, then flush its effects to peers/outputs/timers.
    fn dispatch(&mut self, now: u64, f: impl FnOnce(&mut dyn Automaton<M, O>, &mut Ctx<'_, M, O>)) {
        let mut ctx = Ctx::new(self.pid, now, &mut self.rng);
        f(&mut *self.auto, &mut ctx);
        let (outbox, outputs, set_timers) = ctx.drain();
        for (to, msg) in outbox {
            if to >= self.peers.len() {
                self.metrics.dropped.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            if self.batch.enabled() {
                // Batching path: the logical send is counted now, the wire
                // frame when its queue ships (size watermark here, tick
                // watermark via the FlushLinks wheel entry).
                self.metrics.record_logical_send(self.pid);
                match self.batcher.push(self.pid, to, msg, self.batch.max_batch) {
                    Some(queue) => self.send_frame(to, queue, now),
                    None => {
                        if !self.flush_armed {
                            self.flush_armed = true;
                            let fire = now + self.batch.flush_ticks;
                            let tx = self.self_tx.clone();
                            self.wheel.register(fire, move || {
                                let _ = tx.send(Ctl::FlushLinks);
                            });
                        }
                    }
                }
                continue;
            }
            // The message is handed to the (possibly faulty) channel, so
            // it counts as sent no matter what the fault does to it — the
            // sim backend records the send before consulting the link
            // fault, and the backends must agree.
            self.metrics.record_send(self.pid);
            match self.links.plan(self.pid, to, now, &mut self.rng) {
                SendPlan::Direct { dup } => {
                    // A duplicate is one send delivered twice (the channel
                    // replays it); only the deliveries tally twice.
                    // Quiet sends: publish the whole outbox first, wake
                    // parked peers once at the end of the dispatch, so a
                    // woken consumer cannot preempt this worker while
                    // later outbox messages are still unsent.
                    if dup {
                        let _ = self.peers[to]
                            .send_quiet(Ctl::Msg { from: self.pid, msg: msg.clone() });
                    }
                    if let Ok(parked) = self.peers[to].send_quiet(Ctl::Msg { from: self.pid, msg })
                    {
                        if parked && !self.wake_buf.contains(&to) {
                            self.wake_buf.push(to);
                        }
                    }
                }
                SendPlan::Dropped => {
                    self.metrics.dropped.fetch_add(1, Ordering::Relaxed);
                }
                SendPlan::Defer { at, dup_at } => {
                    // Deferred delivery through the wheel: only this link
                    // waits; the worker moves straight on to its other
                    // destinations. The wheel fires in (tick, registration)
                    // order and each link's ticks are strictly increasing,
                    // so per-link FIFO survives the detour.
                    let from = self.pid;
                    if let Some(at2) = dup_at {
                        let tx = self.peers[to].clone();
                        let links = Arc::clone(&self.links);
                        let msg2 = msg.clone();
                        self.wheel.register(at2, move || {
                            let _ = tx.send(Ctl::Msg { from, msg: msg2 });
                            links.deferred_done(from, to);
                        });
                    }
                    let tx = self.peers[to].clone();
                    let links = Arc::clone(&self.links);
                    self.wheel.register(at, move || {
                        let _ = tx.send(Ctl::Msg { from, msg });
                        links.deferred_done(from, to);
                    });
                }
            }
        }
        for to in self.wake_buf.drain(..) {
            self.peers[to].wake();
        }
        for o in outputs {
            self.out.push((now, self.pid, o));
        }
        for (delay, id) in set_timers {
            // Same arming rule as the simulator: fire at now + max(delay, 1).
            let fire = now + delay.max(1);
            let tx = self.self_tx.clone();
            let incarnation = self.incarnation;
            self.wheel.register(fire, move || {
                let _ = tx.send(Ctl::Timer { id, incarnation });
            });
        }
    }

    /// Ship a drained link queue to `to` as one wire frame. Link faults act
    /// on whole frames: a dropped frame drops every carried message, a
    /// duplicated frame delivers all of them twice, a delayed frame defers
    /// through the wheel behind the link's FIFO clamp exactly like a single
    /// message. Wakes land in `wake_buf`; every caller drains it afterward.
    fn send_frame(&mut self, to: ProcessId, queue: Vec<M>, now: u64) {
        fn pack<M, O>(from: ProcessId, mut q: Vec<M>) -> Ctl<M, O> {
            if q.len() == 1 {
                Ctl::Msg { from, msg: q.pop().expect("len checked") }
            } else {
                Ctl::Batch { from, msgs: q }
            }
        }
        self.metrics.record_frame_sent();
        let logical = queue.len() as u64;
        match self.links.plan(self.pid, to, now, &mut self.rng) {
            SendPlan::Direct { dup } => {
                if dup {
                    let _ = self.peers[to].send_quiet(pack(self.pid, queue.clone()));
                }
                if let Ok(parked) = self.peers[to].send_quiet(pack(self.pid, queue)) {
                    if parked && !self.wake_buf.contains(&to) {
                        self.wake_buf.push(to);
                    }
                }
            }
            SendPlan::Dropped => {
                self.metrics.dropped.fetch_add(logical, Ordering::Relaxed);
            }
            SendPlan::Defer { at, dup_at } => {
                let from = self.pid;
                if let Some(at2) = dup_at {
                    let tx = self.peers[to].clone();
                    let links = Arc::clone(&self.links);
                    let queue2 = queue.clone();
                    self.wheel.register(at2, move || {
                        let _ = tx.send(pack(from, queue2));
                        links.deferred_done(from, to);
                    });
                }
                let tx = self.peers[to].clone();
                let links = Arc::clone(&self.links);
                self.wheel.register(at, move || {
                    let _ = tx.send(pack(from, queue));
                    links.deferred_done(from, to);
                });
            }
        }
    }
}

fn ticks_since(epoch: Instant, tick: Duration) -> u64 {
    (epoch.elapsed().as_nanos() / tick.as_nanos().max(1)) as u64
}

/// A running cluster of automata on OS threads.
pub struct ThreadedCluster<M, O> {
    inboxes: Vec<Sender<Ctl<M, O>>>,
    outputs: Arc<OutputHub<O>>,
    handles: Vec<JoinHandle<()>>,
    latch: Arc<ExitLatch>,
    wheel: TimerWheelThread,
    metrics: Arc<SharedMetrics>,
    links: Arc<LinkFaults>,
    trace: Option<Arc<Mutex<Trace>>>,
    /// Driver-side RNG for fault-plan garbage generation.
    rng: StdRng,
    epoch: Instant,
    tick: Duration,
    pump_timeout: Duration,
    join_timeout: Duration,
    stopped: bool,
}

impl<M, O> ThreadedCluster<M, O>
where
    M: Clone + std::fmt::Debug + Send + 'static,
    O: Send + 'static,
{
    /// Spawn one thread per automaton. `seed` derives each thread's RNG.
    pub fn spawn(procs: Vec<Box<dyn Automaton<M, O>>>, seed: u64) -> Self {
        Self::spawn_with(procs, &SubstrateConfig::seeded(seed))
    }

    /// Spawn with full substrate configuration.
    pub fn spawn_with(procs: Vec<Box<dyn Automaton<M, O>>>, config: &SubstrateConfig) -> Self {
        let n = procs.len();
        let mut inbox_tx = Vec::with_capacity(n);
        let mut inbox_rx = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded::<Ctl<M, O>>();
            inbox_tx.push(tx);
            inbox_rx.push(rx);
        }
        let outputs = Arc::new(OutputHub::new(n));
        let metrics = Arc::new(SharedMetrics::new(n));
        let links = Arc::new(LinkFaults::new());
        let latch = Arc::new(ExitLatch::new(n));
        let trace = (config.trace_capacity > 0)
            .then(|| Arc::new(Mutex::new(Trace::new(config.trace_capacity))));
        let epoch = Instant::now();
        let wheel = TimerWheel::spawn(epoch, config.tick);

        let mut handles = Vec::with_capacity(n);
        for ((pid, auto), rx) in procs.into_iter().enumerate().zip(inbox_rx) {
            let worker = Worker {
                pid,
                auto,
                self_tx: inbox_tx[pid].clone(),
                rx,
                peers: inbox_tx.clone(),
                out: Arc::clone(&outputs),
                wheel: wheel.handle(),
                metrics: Arc::clone(&metrics),
                links: Arc::clone(&links),
                trace: trace.clone(),
                epoch,
                tick: config.tick,
                rng: StdRng::seed_from_u64(
                    config.seed ^ (pid as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                ),
                incarnation: 0,
                wake_buf: Vec::new(),
                batch: config.batch,
                batcher: LinkBatcher::new(),
                flush_armed: false,
            };
            let latch = Arc::clone(&latch);
            handles.push(std::thread::spawn(move || worker.run(latch)));
        }

        Self {
            inboxes: inbox_tx,
            outputs,
            handles,
            latch,
            wheel,
            metrics,
            links,
            trace,
            rng: StdRng::seed_from_u64(config.seed ^ 0xD1B5_4A32_D192_ED03),
            epoch,
            tick: config.tick,
            pump_timeout: config.pump_timeout,
            join_timeout: config.join_timeout,
            stopped: false,
        }
    }

    /// Number of processes.
    pub fn len(&self) -> usize {
        self.inboxes.len()
    }

    /// Whether the cluster is empty.
    pub fn is_empty(&self) -> bool {
        self.inboxes.is_empty()
    }

    /// Elapsed ticks since spawn (the cluster-wide clock).
    pub fn ticks(&self) -> u64 {
        ticks_since(self.epoch, self.tick)
    }

    /// Send a command to `pid` as the environment.
    pub fn send(&self, pid: ProcessId, msg: M) {
        self.metrics.record_send(ENV);
        let _ = self.inboxes[pid].send(Ctl::Msg { from: ENV, msg });
    }

    /// Inject a message into `pid`'s inbox with a spoofed sender — the
    /// threaded realization of garbage already in transit on `(from, to)`.
    pub fn inject_as(&self, from: ProcessId, to: ProcessId, msg: M) {
        self.metrics.record_send(from);
        let _ = self.inboxes[to].send(Ctl::Msg { from, msg });
    }

    /// Block until `pid` emits an output, up to `timeout`. Outputs of
    /// other processes are left for their own consumers, so concurrent
    /// per-pid waiters (one client thread each) do not steal each other's
    /// results.
    pub fn recv_output(&self, pid: ProcessId, timeout: Duration) -> Option<O> {
        self.outputs.recv_for(pid, Instant::now() + timeout)
    }

    /// Non-blocking output poll.
    pub fn try_recv_output(&self, pid: ProcessId) -> Option<O> {
        self.outputs.try_recv_for(pid)
    }

    /// Send a command and wait for the next output from the same process —
    /// the blocking client-operation shape used by examples and E9.
    pub fn invoke_and_wait(&self, pid: ProcessId, msg: M, timeout: Duration) -> Option<O> {
        self.send(pid, msg);
        self.recv_output(pid, timeout)
    }

    /// Corrupt `pid`'s automaton state in-thread (transient fault).
    pub fn corrupt_process(&self, pid: ProcessId) {
        let _ = self.inboxes[pid].send(Ctl::Corrupt);
    }

    /// Restart `pid` with a fresh automaton (crash recovery): the control
    /// message lands FIFO after everything already in `pid`'s inbox, so the
    /// new incarnation sees only traffic sent after the restart was issued.
    pub fn restart_process(&self, pid: ProcessId, auto: Box<dyn Automaton<M, O>>) {
        let _ = self.inboxes[pid].send(Ctl::Restart(auto));
    }

    /// Install (`Some`) or clear (`None`) a link fault on `(from, to)`.
    pub fn set_link_fault_on(&self, from: ProcessId, to: ProcessId, fault: Option<LinkFault>) {
        self.links.set(from, to, fault);
    }

    /// Stop all threads and join them (bounded by the configured join
    /// timeout). Equivalent to dropping the cluster, but explicit.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }
}

impl<M, O> ThreadedCluster<M, O> {
    fn stop_and_join(&mut self) {
        if self.stopped {
            return;
        }
        self.stopped = true;
        for tx in &self.inboxes {
            let _ = tx.send(Ctl::Stop);
        }
        // Halt the wheel first: pending deferred deliveries and timer
        // firings are discarded (dropping their inbox-sender clones), per
        // the stop-discards-pending-work contract.
        self.wheel.stop();
        // Park on the exit latch — each worker signals it on the way out —
        // instead of polling `is_finished`.
        let all = self.latch.wait_all(Instant::now() + self.join_timeout);
        for h in self.handles.drain(..) {
            if all || h.is_finished() {
                let _ = h.join();
            }
            // Past the deadline a hung worker is abandoned (detached): its
            // inbox senders die with `self`, so it exits on its next recv.
        }
    }
}

impl<M, O> Drop for ThreadedCluster<M, O> {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

impl<M, O> Substrate<M, O> for ThreadedCluster<M, O>
where
    M: Clone + std::fmt::Debug + Send + 'static,
    O: Clone + std::fmt::Debug + Send + 'static,
{
    fn backend(&self) -> Backend {
        Backend::Threaded
    }

    fn process_count(&self) -> usize {
        self.len()
    }

    fn now(&self) -> u64 {
        self.ticks()
    }

    fn inject(&mut self, pid: ProcessId, msg: M) {
        ThreadedCluster::send(self, pid, msg);
    }

    /// Block directly on the shared output hub up to `pump_timeout`:
    /// one wait, no sweeping, no sleep slices. [`Pumped::Idle`] therefore
    /// certifies that no process emitted an output during the window.
    fn pump(&mut self) -> Pumped<O> {
        if self.stopped || self.inboxes.is_empty() {
            return Pumped::Quiescent;
        }
        match self.outputs.recv_any(Instant::now() + self.pump_timeout) {
            Some((time, pid, o)) => Pumped::Event { time, pid, outputs: Outputs::One(o) },
            None => Pumped::Idle,
        }
    }

    fn metrics_snapshot(&self) -> NetMetrics {
        self.metrics.snapshot()
    }

    fn trace_snapshot(&self) -> Trace {
        match &self.trace {
            Some(t) => t.lock().map(|g| g.clone()).unwrap_or_default(),
            None => Trace::default(),
        }
    }

    fn apply_fault(&mut self, plan: &FaultPlan, gen: &mut dyn FnMut(&mut StdRng) -> M) {
        for &pid in &plan.corrupt_processes {
            if pid < self.inboxes.len() {
                self.corrupt_process(pid);
            }
        }
        for &(from, to) in &plan.garbage_channels {
            if to >= self.inboxes.len() {
                continue;
            }
            for _ in 0..plan.garbage_per_channel {
                let msg = gen(&mut self.rng);
                self.inject_as(from, to, msg);
            }
        }
    }

    fn crash(&mut self, pid: ProcessId) {
        let _ = self.inboxes[pid].send(Ctl::Crash);
    }

    fn restart(&mut self, pid: ProcessId, auto: Box<dyn Automaton<M, O>>) {
        self.restart_process(pid, auto);
    }

    fn set_link_fault(&mut self, from: ProcessId, to: ProcessId, fault: Option<LinkFault>) {
        self.set_link_fault_on(from, to, fault);
    }

    fn stop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, Default)]
    struct Ping(u32);

    struct Doubler;
    impl Automaton<Ping, u32> for Doubler {
        fn on_message(&mut self, from: ProcessId, msg: Ping, ctx: &mut Ctx<'_, Ping, u32>) {
            if from == ENV {
                ctx.send(1, msg); // forward to the worker
            } else {
                ctx.output(msg.0); // result came back
            }
        }
    }

    struct Worker2;
    impl Automaton<Ping, u32> for Worker2 {
        fn on_message(&mut self, from: ProcessId, msg: Ping, ctx: &mut Ctx<'_, Ping, u32>) {
            ctx.send(from, Ping(msg.0 * 2));
        }
    }

    #[test]
    fn round_trip_through_threads() {
        let cluster: ThreadedCluster<Ping, u32> =
            ThreadedCluster::spawn(vec![Box::new(Doubler), Box::new(Worker2)], 1);
        let out = cluster.invoke_and_wait(0, Ping(21), Duration::from_secs(5));
        assert_eq!(out, Some(42));
        cluster.shutdown();
    }

    #[test]
    fn fifo_per_producer() {
        struct Seq(Vec<u32>);
        impl Automaton<Ping, Vec<u32>> for Seq {
            fn on_message(
                &mut self,
                _from: ProcessId,
                msg: Ping,
                ctx: &mut Ctx<'_, Ping, Vec<u32>>,
            ) {
                self.0.push(msg.0);
                if self.0.len() == 100 {
                    ctx.output(self.0.clone());
                }
            }
        }
        let cluster: ThreadedCluster<Ping, Vec<u32>> =
            ThreadedCluster::spawn(vec![Box::new(Seq(Vec::new()))], 2);
        for i in 0..100 {
            cluster.send(0, Ping(i));
        }
        let got = cluster.recv_output(0, Duration::from_secs(5)).unwrap();
        assert_eq!(got, (0..100).collect::<Vec<u32>>());
        cluster.shutdown();
    }

    #[test]
    fn shutdown_joins_cleanly() {
        let cluster: ThreadedCluster<Ping, u32> =
            ThreadedCluster::spawn(vec![Box::new(Worker2), Box::new(Worker2)], 3);
        cluster.shutdown();
    }

    #[test]
    fn drop_joins_without_explicit_shutdown() {
        let cluster: ThreadedCluster<Ping, u32> =
            ThreadedCluster::spawn(vec![Box::new(Doubler), Box::new(Worker2)], 7);
        let _ = cluster.invoke_and_wait(0, Ping(1), Duration::from_secs(5));
        drop(cluster); // must terminate promptly, not hang
    }

    #[test]
    fn parallel_clients_all_served() {
        // Many environment commands from multiple user threads; every one
        // gets a response. Exercises MPMC sends into one inbox.
        let cluster: ThreadedCluster<Ping, u32> =
            ThreadedCluster::spawn(vec![Box::new(Doubler), Box::new(Worker2)], 4);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..25 {
                        cluster.send(0, Ping(i));
                    }
                });
            }
        });
        let mut got = 0;
        while cluster.recv_output(0, Duration::from_millis(500)).is_some() {
            got += 1;
        }
        assert_eq!(got, 100);
        cluster.shutdown();
    }

    #[test]
    fn timers_fire_on_threads() {
        /// Emits its tick count each time its timer fires, re-arming twice.
        struct TimerAuto {
            fired: u32,
        }
        impl Automaton<Ping, u32> for TimerAuto {
            fn on_start(&mut self, ctx: &mut Ctx<'_, Ping, u32>) {
                ctx.set_timer(5, 77);
            }
            fn on_timer(&mut self, id: u64, ctx: &mut Ctx<'_, Ping, u32>) {
                assert_eq!(id, 77);
                self.fired += 1;
                ctx.output(self.fired);
                if self.fired < 3 {
                    ctx.set_timer(5, 77);
                }
            }
            fn on_message(&mut self, _: ProcessId, _: Ping, _: &mut Ctx<'_, Ping, u32>) {}
        }
        let cluster: ThreadedCluster<Ping, u32> =
            ThreadedCluster::spawn(vec![Box::new(TimerAuto { fired: 0 })], 5);
        for expect in 1..=3u32 {
            let got = cluster.recv_output(0, Duration::from_secs(5));
            assert_eq!(got, Some(expect));
        }
        cluster.shutdown();
    }

    #[test]
    fn restart_invalidates_prior_incarnation_timers() {
        /// Arms a long timer on start, outputs `gen` when it fires.
        struct Gen(u32);
        impl Automaton<Ping, u32> for Gen {
            fn on_start(&mut self, ctx: &mut Ctx<'_, Ping, u32>) {
                ctx.set_timer(10, u64::from(self.0));
            }
            fn on_timer(&mut self, id: u64, ctx: &mut Ctx<'_, Ping, u32>) {
                ctx.output(id as u32);
            }
            fn on_message(&mut self, _: ProcessId, _: Ping, _: &mut Ctx<'_, Ping, u32>) {}
        }
        let cluster: ThreadedCluster<Ping, u32> =
            ThreadedCluster::spawn(vec![Box::new(Gen(1))], 11);
        // Restart before the first incarnation's timer fires; only the
        // second incarnation's firing may surface.
        cluster.restart_process(0, Box::new(Gen(2)));
        let got = cluster.recv_output(0, Duration::from_secs(5));
        assert_eq!(got, Some(2), "stale-incarnation timer must not fire");
        assert_eq!(cluster.try_recv_output(0), None);
        cluster.shutdown();
    }

    #[test]
    fn metrics_count_sends_and_deliveries() {
        let mut cluster: ThreadedCluster<Ping, u32> =
            ThreadedCluster::spawn(vec![Box::new(Doubler), Box::new(Worker2)], 6);
        for _ in 0..10 {
            let _ = cluster.invoke_and_wait(0, Ping(2), Duration::from_secs(5));
        }
        let m = cluster.metrics_snapshot();
        // 10 env commands + 10 forwards + 10 replies.
        assert_eq!(m.messages_sent, 30, "{m:?}");
        assert_eq!(m.messages_delivered, 30, "{m:?}");
        assert_eq!(m.sent_by_process(ENV), 10);
        assert_eq!(m.received_by_process(1), 10);
        Substrate::stop(&mut cluster);
    }

    #[test]
    fn crash_drops_subsequent_deliveries() {
        let mut cluster: ThreadedCluster<Ping, u32> =
            ThreadedCluster::spawn(vec![Box::new(Doubler), Box::new(Worker2)], 8);
        Substrate::crash(&mut cluster, 1);
        // Give the crash control a moment to land ahead of traffic.
        std::thread::sleep(Duration::from_millis(20));
        let out = cluster.invoke_and_wait(0, Ping(3), Duration::from_millis(300));
        assert_eq!(out, None, "worker crashed, reply must never come");
        let m = cluster.metrics_snapshot();
        assert!(m.messages_dropped >= 1, "{m:?}");
        Substrate::stop(&mut cluster);
    }

    #[test]
    fn corruption_reaches_the_automaton() {
        struct Corruptible {
            poisoned: bool,
        }
        impl Automaton<Ping, u32> for Corruptible {
            fn on_message(&mut self, _: ProcessId, _: Ping, ctx: &mut Ctx<'_, Ping, u32>) {
                ctx.output(if self.poisoned { 1 } else { 0 });
            }
            fn corrupt(&mut self, _rng: &mut StdRng) {
                self.poisoned = true;
            }
        }
        let mut cluster: ThreadedCluster<Ping, u32> =
            ThreadedCluster::spawn(vec![Box::new(Corruptible { poisoned: false })], 9);
        let plan = FaultPlan {
            corrupt_processes: vec![0],
            garbage_channels: vec![],
            garbage_per_channel: 0,
        };
        Substrate::apply_fault(&mut cluster, &plan, &mut |_rng| Ping(0));
        let out = cluster.invoke_and_wait(0, Ping(0), Duration::from_secs(5));
        assert_eq!(out, Some(1), "corrupt control must precede the probe (FIFO)");
        Substrate::stop(&mut cluster);
    }

    #[test]
    fn delayed_link_does_not_stall_other_links() {
        /// Fans one env command out to both peers; peers echo back.
        struct Fan;
        impl Automaton<Ping, u32> for Fan {
            fn on_message(&mut self, from: ProcessId, msg: Ping, ctx: &mut Ctx<'_, Ping, u32>) {
                if from == ENV {
                    ctx.send(1, msg.clone());
                    ctx.send(2, msg);
                } else {
                    ctx.output(from as u32);
                }
            }
        }
        struct Echo;
        impl Automaton<Ping, u32> for Echo {
            fn on_message(&mut self, from: ProcessId, msg: Ping, ctx: &mut Ctx<'_, Ping, u32>) {
                ctx.send(from, msg);
            }
        }
        let cluster: ThreadedCluster<Ping, u32> = ThreadedCluster::spawn_with(
            vec![Box::new(Fan), Box::new(Echo), Box::new(Echo)],
            &SubstrateConfig::seeded(10).with_tick(Duration::from_millis(2)),
        );
        // 500 ticks × 2 ms = a full second of delay on link 0→1 only.
        cluster.set_link_fault_on(0, 1, Some(LinkFault::flaky(0.0, 0.0, 500)));
        let t0 = Instant::now();
        cluster.send(0, Ping(7));
        // The 0→2 echo must come back promptly even though 0→1 is stalled:
        // the old runtime slept the whole worker for the delay, so this
        // reply used to take the full second too.
        let first = cluster.recv_output(0, Duration::from_secs(5));
        let elapsed = t0.elapsed();
        assert_eq!(first, Some(2), "fast link's reply must arrive first");
        assert!(
            elapsed < Duration::from_millis(500),
            "delayed 0→1 link stalled the 0→2 send ({elapsed:?})"
        );
        // The delayed link still delivers (later), preserving the reply.
        let second = cluster.recv_output(0, Duration::from_secs(10));
        assert_eq!(second, Some(1), "delayed link must still deliver");
        cluster.shutdown();
    }

    #[test]
    fn batching_coalesces_frames_and_preserves_fifo_on_threads() {
        /// Collects payloads; outputs the arrival order once all 60 landed.
        struct Collect(Vec<u32>);
        impl Automaton<Ping, Vec<u32>> for Collect {
            fn on_message(
                &mut self,
                _from: ProcessId,
                msg: Ping,
                ctx: &mut Ctx<'_, Ping, Vec<u32>>,
            ) {
                self.0.push(msg.0);
                if self.0.len() == 60 {
                    ctx.output(self.0.clone());
                }
            }
        }
        /// Fans each env command into three forwarded payloads, so one
        /// dispatch queues several messages on the same link.
        struct Fan3;
        impl Automaton<Ping, Vec<u32>> for Fan3 {
            fn on_message(
                &mut self,
                from: ProcessId,
                msg: Ping,
                ctx: &mut Ctx<'_, Ping, Vec<u32>>,
            ) {
                if from == ENV {
                    for k in 0..3 {
                        ctx.send(1, Ping(msg.0 * 3 + k));
                    }
                }
            }
        }
        let cluster: ThreadedCluster<Ping, Vec<u32>> = ThreadedCluster::spawn_with(
            vec![Box::new(Fan3), Box::new(Collect(Vec::new()))],
            &SubstrateConfig::seeded(19)
                .with_tick(Duration::from_micros(200))
                .with_batching(BatchPolicy::new(6, 2)),
        );
        for i in 0..20 {
            cluster.send(0, Ping(i));
        }
        let got = cluster.recv_output(1, Duration::from_secs(10)).expect("all 60 delivered");
        assert_eq!(got, (0..60).collect::<Vec<u32>>(), "batching must not reorder a link");
        let m = cluster.metrics_snapshot();
        // 20 env commands + 60 forwards, all delivered.
        assert_eq!(m.messages_sent, 80, "{m:?}");
        assert_eq!(m.messages_delivered, 80, "{m:?}");
        assert!(
            m.frames_delivered < m.messages_delivered,
            "forwarded traffic must coalesce: {m:?}"
        );
        cluster.shutdown();
    }

    #[test]
    fn tick_watermark_flushes_stragglers_on_threads() {
        struct Fwd;
        impl Automaton<Ping, u32> for Fwd {
            fn on_message(&mut self, from: ProcessId, msg: Ping, ctx: &mut Ctx<'_, Ping, u32>) {
                if from == ENV {
                    ctx.send(1, msg);
                }
            }
        }
        struct Echo;
        impl Automaton<Ping, u32> for Echo {
            fn on_message(&mut self, _from: ProcessId, msg: Ping, ctx: &mut Ctx<'_, Ping, u32>) {
                ctx.output(msg.0);
            }
        }
        let cluster: ThreadedCluster<Ping, u32> = ThreadedCluster::spawn_with(
            vec![Box::new(Fwd), Box::new(Echo)],
            &SubstrateConfig::seeded(23).with_batching(BatchPolicy::new(64, 2)),
        );
        // One message far below the size watermark must still arrive.
        cluster.send(0, Ping(99));
        let got = cluster.recv_output(1, Duration::from_secs(5));
        assert_eq!(got, Some(99), "pending batch must flush on the tick watermark");
        cluster.shutdown();
    }

    #[test]
    fn delayed_link_preserves_per_link_fifo() {
        /// Collects the payload order seen by the destination.
        struct Collect(Vec<u32>);
        impl Automaton<Ping, Vec<u32>> for Collect {
            fn on_message(
                &mut self,
                _from: ProcessId,
                msg: Ping,
                ctx: &mut Ctx<'_, Ping, Vec<u32>>,
            ) {
                self.0.push(msg.0);
                if self.0.len() == 30 {
                    ctx.output(self.0.clone());
                }
            }
        }
        /// Forwards env payloads to pid 1.
        struct Fwd;
        impl Automaton<Ping, Vec<u32>> for Fwd {
            fn on_message(
                &mut self,
                from: ProcessId,
                msg: Ping,
                ctx: &mut Ctx<'_, Ping, Vec<u32>>,
            ) {
                if from == ENV {
                    ctx.send(1, msg);
                }
            }
        }
        let cluster: ThreadedCluster<Ping, Vec<u32>> = ThreadedCluster::spawn_with(
            vec![Box::new(Fwd), Box::new(Collect(Vec::new()))],
            &SubstrateConfig::seeded(12).with_tick(Duration::from_micros(200)),
        );
        // First 10 sends race ahead fault-free, then a delayed window, then
        // the fault is cleared mid-stream: the healed sends must still
        // queue behind the deferred ones (the FIFO clamp), not overtake.
        for i in 0..10 {
            cluster.send(0, Ping(i));
        }
        std::thread::sleep(Duration::from_millis(20));
        cluster.set_link_fault_on(0, 1, Some(LinkFault::flaky(0.0, 0.0, 40)));
        for i in 10..20 {
            cluster.send(0, Ping(i));
        }
        std::thread::sleep(Duration::from_millis(2));
        cluster.set_link_fault_on(0, 1, None);
        for i in 20..30 {
            cluster.send(0, Ping(i));
        }
        let got = cluster.recv_output(1, Duration::from_secs(10)).expect("all 30 delivered");
        assert_eq!(got, (0..30).collect::<Vec<u32>>(), "per-link FIFO violated");
        cluster.shutdown();
    }
}
