//! Real-thread runtime: one OS thread per process, crossbeam FIFO channels.
//!
//! This substrate exists for experiment E9 (wall-clock throughput of the
//! register under real parallelism) and to demonstrate that the sans-IO
//! automata are substrate-independent. Each process owns an unbounded
//! crossbeam channel as its inbox; since a crossbeam channel delivers any
//! single producer's messages in send order, the per-pair FIFO property the
//! protocol relies on holds. There is no determinism — correctness
//! assertions belong on the simulator, throughput measurements here — but
//! the full driver surface of [`crate::substrate::Substrate`] is supported:
//!
//! * **Timers**: each worker keeps a local timer wheel and waits on its
//!   inbox with `recv_deadline`; a timer of `d` virtual units fires after
//!   `d × tick` of wall clock (`tick` from
//!   [`crate::substrate::SubstrateConfig`]).
//! * **Time**: `Ctx::now` and output timestamps are ticks elapsed since
//!   spawn, measured against one shared epoch — comparable across
//!   processes the way virtual time is on the simulator.
//! * **Metrics**: workers record sends/deliveries/drops into shared atomic
//!   counters, snapshotted on demand as [`NetMetrics`].
//! * **Fault injection**: [`FaultPlan`]s corrupt victim automata in-thread
//!   (a control message invokes [`Automaton::corrupt`]) and inject garbage
//!   messages on the listed channels with spoofed senders.
//! * **Link faults**: workers consult a shared link-fault table before
//!   every delivery; a faulted link drops, duplicates, or stalls the send
//!   on the *sender* side, so FIFO order among surviving messages is
//!   preserved (they still traverse one crossbeam channel in send order).
//!   Faults apply to sends that *begin* after the table update — a send
//!   racing the update may see either state, which is the honest threaded
//!   analogue of a fault landing "at" an instant.
//! * **Crash recovery**: a restart control message replaces the worker's
//!   automaton in place, clears its timer wheel (old-incarnation timers
//!   never fire), un-crashes it, and runs `on_start` — the inbox channel
//!   and thread survive, so peers keep a working route to the process.
//! * **Shutdown**: `stop` (and `Drop`) delivers stop controls and joins
//!   every worker with a bounded timeout, so a hung automaton cannot hang
//!   the driver.

use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::corruption::FaultPlan;
use crate::metrics::NetMetrics;
use crate::nemesis::LinkFault;
use crate::process::{Automaton, Ctx, ProcessId, ENV};
use crate::substrate::{Backend, Pumped, Substrate, SubstrateConfig};
use crate::trace::Trace;

enum Ctl<M, O> {
    Msg { from: ProcessId, msg: M },
    Corrupt,
    Crash,
    Restart(Box<dyn Automaton<M, O>>),
    Stop,
}

/// Shared per-directed-link fault table. The `AtomicBool` fast path keeps
/// the fault-free hot loop lock-free: workers only take the mutex while at
/// least one fault is installed.
struct LinkFaults {
    any_active: AtomicBool,
    map: Mutex<HashMap<(ProcessId, ProcessId), LinkFault>>,
}

impl LinkFaults {
    fn new() -> Self {
        Self { any_active: AtomicBool::new(false), map: Mutex::new(HashMap::new()) }
    }

    fn get(&self, from: ProcessId, to: ProcessId) -> Option<LinkFault> {
        if !self.any_active.load(Ordering::Acquire) {
            return None;
        }
        self.map.lock().ok().and_then(|m| m.get(&(from, to)).copied())
    }

    fn set(&self, from: ProcessId, to: ProcessId, fault: Option<LinkFault>) {
        if let Ok(mut m) = self.map.lock() {
            match fault {
                Some(f) => {
                    m.insert((from, to), f);
                }
                None => {
                    m.remove(&(from, to));
                }
            }
            self.any_active.store(!m.is_empty(), Ordering::Release);
        }
    }
}

/// Lock-free counters shared by all workers; ENV tallies live in the
/// extra slot at index `n`.
struct SharedMetrics {
    sent: AtomicU64,
    delivered: AtomicU64,
    dropped: AtomicU64,
    events: AtomicU64,
    sent_by: Vec<AtomicU64>,
    received_by: Vec<AtomicU64>,
}

impl SharedMetrics {
    fn new(n: usize) -> Self {
        Self {
            sent: AtomicU64::new(0),
            delivered: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            events: AtomicU64::new(0),
            sent_by: (0..=n).map(|_| AtomicU64::new(0)).collect(),
            received_by: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn record_send(&self, from: ProcessId) {
        self.sent.fetch_add(1, Ordering::Relaxed);
        let slot = if from == ENV { self.sent_by.len() - 1 } else { from };
        self.sent_by[slot].fetch_add(1, Ordering::Relaxed);
    }

    fn record_delivery(&self, to: ProcessId) {
        self.delivered.fetch_add(1, Ordering::Relaxed);
        self.received_by[to].fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> NetMetrics {
        let mut m = NetMetrics {
            messages_sent: self.sent.load(Ordering::Relaxed),
            messages_delivered: self.delivered.load(Ordering::Relaxed),
            messages_dropped: self.dropped.load(Ordering::Relaxed),
            events_processed: self.events.load(Ordering::Relaxed),
            ..NetMetrics::default()
        };
        let env_slot = self.sent_by.len() - 1;
        for (pid, c) in self.sent_by.iter().enumerate() {
            let v = c.load(Ordering::Relaxed);
            if v > 0 {
                let key = if pid == env_slot { ENV } else { pid };
                m.sent_by.insert(key, v);
            }
        }
        for (pid, c) in self.received_by.iter().enumerate() {
            let v = c.load(Ordering::Relaxed);
            if v > 0 {
                m.received_by.insert(pid, v);
            }
        }
        m
    }
}

/// Everything one worker thread needs; grouped to keep the spawn loop flat.
struct Worker<M, O> {
    pid: ProcessId,
    auto: Box<dyn Automaton<M, O>>,
    rx: Receiver<Ctl<M, O>>,
    peers: Vec<Sender<Ctl<M, O>>>,
    out: Sender<(u64, O)>,
    metrics: Arc<SharedMetrics>,
    links: Arc<LinkFaults>,
    trace: Option<Arc<Mutex<Trace>>>,
    epoch: Instant,
    tick: Duration,
    rng: StdRng,
}

impl<M, O> Worker<M, O>
where
    M: Clone + std::fmt::Debug + Send + 'static,
    O: Send + 'static,
{
    fn ticks(&self) -> u64 {
        ticks_since(self.epoch, self.tick)
    }

    fn run(mut self) {
        // Timer wheel: earliest deadline first; seq breaks ties FIFO.
        let mut timers: BinaryHeap<std::cmp::Reverse<(Instant, u64, u64)>> = BinaryHeap::new();
        let mut timer_seq = 0u64;
        let mut crashed = false;

        let now = self.ticks();
        self.dispatch(now, &mut timers, &mut timer_seq, |auto, ctx| auto.on_start(ctx));

        loop {
            let ctl = match timers.peek() {
                Some(&std::cmp::Reverse((deadline, _, _))) => {
                    match self.rx.recv_deadline(deadline) {
                        Ok(ctl) => Some(ctl),
                        Err(RecvTimeoutError::Timeout) => None, // a timer is due
                        Err(RecvTimeoutError::Disconnected) => return,
                    }
                }
                None => match self.rx.recv() {
                    Ok(ctl) => Some(ctl),
                    Err(_) => return,
                },
            };
            match ctl {
                Some(Ctl::Stop) => return,
                Some(Ctl::Crash) => {
                    crashed = true;
                    timers.clear();
                }
                Some(Ctl::Corrupt) => {
                    self.auto.corrupt(&mut self.rng);
                }
                Some(Ctl::Restart(auto)) => {
                    // Crash recovery with state loss: fresh automaton, no
                    // surviving timers, inbox and thread reused.
                    self.auto = auto;
                    crashed = false;
                    timers.clear();
                    timer_seq = 0;
                    let now = self.ticks();
                    self.dispatch(now, &mut timers, &mut timer_seq, |auto, ctx| auto.on_start(ctx));
                }
                Some(Ctl::Msg { from, msg }) => {
                    if crashed {
                        self.metrics.dropped.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    self.metrics.events.fetch_add(1, Ordering::Relaxed);
                    self.metrics.record_delivery(self.pid);
                    let now = self.ticks();
                    if let Some(trace) = &self.trace {
                        if let Ok(mut t) = trace.lock() {
                            t.record(now, from, self.pid, || format!("{msg:?}"));
                        }
                    }
                    self.dispatch(now, &mut timers, &mut timer_seq, |auto, ctx| {
                        auto.on_message(from, msg, ctx)
                    });
                }
                None => {
                    // The earliest timer is due (and possibly more).
                    let wall = Instant::now();
                    while let Some(&std::cmp::Reverse((deadline, _, id))) = timers.peek() {
                        if deadline > wall {
                            break;
                        }
                        timers.pop();
                        if crashed {
                            continue;
                        }
                        self.metrics.events.fetch_add(1, Ordering::Relaxed);
                        let now = self.ticks();
                        self.dispatch(now, &mut timers, &mut timer_seq, |auto, ctx| {
                            auto.on_timer(id, ctx)
                        });
                    }
                }
            }
        }
    }

    /// Run one callback, then flush its effects to peers/outputs/timers.
    fn dispatch(
        &mut self,
        now: u64,
        timers: &mut BinaryHeap<std::cmp::Reverse<(Instant, u64, u64)>>,
        timer_seq: &mut u64,
        f: impl FnOnce(&mut dyn Automaton<M, O>, &mut Ctx<'_, M, O>),
    ) {
        let mut ctx = Ctx::new(self.pid, now, &mut self.rng);
        f(&mut *self.auto, &mut ctx);
        let (outbox, outputs, set_timers) = ctx.drain();
        for (to, msg) in outbox {
            if to >= self.peers.len() {
                self.metrics.dropped.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            match self.links.get(self.pid, to) {
                None => {
                    self.metrics.record_send(self.pid);
                    let _ = self.peers[to].send(Ctl::Msg { from: self.pid, msg });
                }
                Some(f) => {
                    // The message was handed to the (faulty) channel, so it
                    // counts as sent no matter what the fault does to it —
                    // the sim backend records the send before consulting the
                    // link fault, and the backends must agree.
                    self.metrics.record_send(self.pid);
                    if f.drop_rate > 0.0 && self.rng.gen_bool(f.drop_rate.min(1.0)) {
                        self.metrics.dropped.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    if f.extra_delay > 0 {
                        // Sender-side stall: delays this send and everything
                        // after it on this worker, which keeps FIFO intact.
                        // Capped so a fault cannot freeze a worker for long.
                        let units = f.extra_delay.min(100) as u32;
                        std::thread::sleep(self.tick.saturating_mul(units));
                    }
                    // A duplicate is one send delivered twice (the channel
                    // replays it); only the deliveries tally twice.
                    if f.dup_rate > 0.0 && self.rng.gen_bool(f.dup_rate.min(1.0)) {
                        let _ = self.peers[to].send(Ctl::Msg { from: self.pid, msg: msg.clone() });
                    }
                    let _ = self.peers[to].send(Ctl::Msg { from: self.pid, msg });
                }
            }
        }
        for o in outputs {
            let _ = self.out.send((now, o));
        }
        for (delay, id) in set_timers {
            let units = delay.clamp(1, u32::MAX as u64) as u32;
            let deadline = Instant::now() + self.tick.saturating_mul(units);
            timers.push(std::cmp::Reverse((deadline, *timer_seq, id)));
            *timer_seq += 1;
        }
    }
}

fn ticks_since(epoch: Instant, tick: Duration) -> u64 {
    (epoch.elapsed().as_nanos() / tick.as_nanos().max(1)) as u64
}

/// A running cluster of automata on OS threads.
pub struct ThreadedCluster<M, O> {
    inboxes: Vec<Sender<Ctl<M, O>>>,
    outputs: Vec<Receiver<(u64, O)>>,
    handles: Vec<JoinHandle<()>>,
    metrics: Arc<SharedMetrics>,
    links: Arc<LinkFaults>,
    trace: Option<Arc<Mutex<Trace>>>,
    /// Driver-side RNG for fault-plan garbage generation.
    rng: StdRng,
    epoch: Instant,
    tick: Duration,
    pump_timeout: Duration,
    join_timeout: Duration,
    /// Round-robin start position for fair output polling in `pump`.
    poll_from: usize,
    stopped: bool,
}

impl<M, O> ThreadedCluster<M, O>
where
    M: Clone + std::fmt::Debug + Send + 'static,
    O: Send + 'static,
{
    /// Spawn one thread per automaton. `seed` derives each thread's RNG.
    pub fn spawn(procs: Vec<Box<dyn Automaton<M, O>>>, seed: u64) -> Self {
        Self::spawn_with(procs, &SubstrateConfig::seeded(seed))
    }

    /// Spawn with full substrate configuration.
    pub fn spawn_with(procs: Vec<Box<dyn Automaton<M, O>>>, config: &SubstrateConfig) -> Self {
        let n = procs.len();
        let mut inbox_tx = Vec::with_capacity(n);
        let mut inbox_rx = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded::<Ctl<M, O>>();
            inbox_tx.push(tx);
            inbox_rx.push(rx);
        }
        let mut out_tx = Vec::with_capacity(n);
        let mut out_rx = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded::<(u64, O)>();
            out_tx.push(tx);
            out_rx.push(rx);
        }

        let metrics = Arc::new(SharedMetrics::new(n));
        let links = Arc::new(LinkFaults::new());
        let trace = (config.trace_capacity > 0)
            .then(|| Arc::new(Mutex::new(Trace::new(config.trace_capacity))));
        let epoch = Instant::now();

        let mut handles = Vec::with_capacity(n);
        for ((pid, auto), (rx, out)) in
            procs.into_iter().enumerate().zip(inbox_rx.into_iter().zip(out_tx))
        {
            let worker = Worker {
                pid,
                auto,
                rx,
                peers: inbox_tx.clone(),
                out,
                metrics: Arc::clone(&metrics),
                links: Arc::clone(&links),
                trace: trace.clone(),
                epoch,
                tick: config.tick,
                rng: StdRng::seed_from_u64(
                    config.seed ^ (pid as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                ),
            };
            handles.push(std::thread::spawn(move || worker.run()));
        }

        Self {
            inboxes: inbox_tx,
            outputs: out_rx,
            handles,
            metrics,
            links,
            trace,
            rng: StdRng::seed_from_u64(config.seed ^ 0xD1B5_4A32_D192_ED03),
            epoch,
            tick: config.tick,
            pump_timeout: config.pump_timeout,
            join_timeout: config.join_timeout,
            poll_from: 0,
            stopped: false,
        }
    }

    /// Number of processes.
    pub fn len(&self) -> usize {
        self.inboxes.len()
    }

    /// Whether the cluster is empty.
    pub fn is_empty(&self) -> bool {
        self.inboxes.is_empty()
    }

    /// Elapsed ticks since spawn (the cluster-wide clock).
    pub fn ticks(&self) -> u64 {
        ticks_since(self.epoch, self.tick)
    }

    /// Send a command to `pid` as the environment.
    pub fn send(&self, pid: ProcessId, msg: M) {
        self.metrics.record_send(ENV);
        let _ = self.inboxes[pid].send(Ctl::Msg { from: ENV, msg });
    }

    /// Inject a message into `pid`'s inbox with a spoofed sender — the
    /// threaded realization of garbage already in transit on `(from, to)`.
    pub fn inject_as(&self, from: ProcessId, to: ProcessId, msg: M) {
        self.metrics.record_send(from);
        let _ = self.inboxes[to].send(Ctl::Msg { from, msg });
    }

    /// Block until `pid` emits an output, up to `timeout`.
    pub fn recv_output(&self, pid: ProcessId, timeout: Duration) -> Option<O> {
        self.outputs[pid].recv_timeout(timeout).ok().map(|(_, o)| o)
    }

    /// Non-blocking output poll.
    pub fn try_recv_output(&self, pid: ProcessId) -> Option<O> {
        self.outputs[pid].try_recv().ok().map(|(_, o)| o)
    }

    /// Send a command and wait for the next output from the same process —
    /// the blocking client-operation shape used by examples and E9.
    pub fn invoke_and_wait(&self, pid: ProcessId, msg: M, timeout: Duration) -> Option<O> {
        self.send(pid, msg);
        self.recv_output(pid, timeout)
    }

    /// Corrupt `pid`'s automaton state in-thread (transient fault).
    pub fn corrupt_process(&self, pid: ProcessId) {
        let _ = self.inboxes[pid].send(Ctl::Corrupt);
    }

    /// Restart `pid` with a fresh automaton (crash recovery): the control
    /// message lands FIFO after everything already in `pid`'s inbox, so the
    /// new incarnation sees only traffic sent after the restart was issued.
    pub fn restart_process(&self, pid: ProcessId, auto: Box<dyn Automaton<M, O>>) {
        let _ = self.inboxes[pid].send(Ctl::Restart(auto));
    }

    /// Install (`Some`) or clear (`None`) a link fault on `(from, to)`.
    pub fn set_link_fault_on(&self, from: ProcessId, to: ProcessId, fault: Option<LinkFault>) {
        self.links.set(from, to, fault);
    }

    /// Stop all threads and join them (bounded by the configured join
    /// timeout). Equivalent to dropping the cluster, but explicit.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }
}

impl<M, O> ThreadedCluster<M, O> {
    fn stop_and_join(&mut self) {
        if self.stopped {
            return;
        }
        self.stopped = true;
        for tx in &self.inboxes {
            let _ = tx.send(Ctl::Stop);
        }
        let deadline = Instant::now() + self.join_timeout;
        for h in self.handles.drain(..) {
            while !h.is_finished() && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(1));
            }
            if h.is_finished() {
                let _ = h.join();
            }
            // Past the deadline a hung worker is abandoned (detached): its
            // inbox senders die with `self`, so it exits on its next recv.
        }
    }
}

impl<M, O> Drop for ThreadedCluster<M, O> {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

impl<M, O> Substrate<M, O> for ThreadedCluster<M, O>
where
    M: Clone + std::fmt::Debug + Send + 'static,
    O: Clone + std::fmt::Debug + Send + 'static,
{
    fn backend(&self) -> Backend {
        Backend::Threaded
    }

    fn process_count(&self) -> usize {
        self.len()
    }

    fn now(&self) -> u64 {
        self.ticks()
    }

    fn inject(&mut self, pid: ProcessId, msg: M) {
        ThreadedCluster::send(self, pid, msg);
    }

    /// Sweep all output queues (round-robin start for fairness); block in
    /// short slices up to `pump_timeout` before reporting [`Pumped::Idle`].
    fn pump(&mut self) -> Pumped<O> {
        if self.stopped {
            return Pumped::Quiescent;
        }
        let n = self.outputs.len();
        if n == 0 {
            return Pumped::Quiescent;
        }
        let deadline = Instant::now() + self.pump_timeout;
        loop {
            for i in 0..n {
                let pid = (self.poll_from + i) % n;
                if let Ok((time, o)) = self.outputs[pid].try_recv() {
                    self.poll_from = (pid + 1) % n;
                    return Pumped::Event { time, pid, outputs: vec![o] };
                }
            }
            if Instant::now() >= deadline {
                return Pumped::Idle;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    fn metrics_snapshot(&self) -> NetMetrics {
        self.metrics.snapshot()
    }

    fn trace_snapshot(&self) -> Trace {
        match &self.trace {
            Some(t) => t.lock().map(|g| g.clone()).unwrap_or_default(),
            None => Trace::default(),
        }
    }

    fn apply_fault(&mut self, plan: &FaultPlan, gen: &mut dyn FnMut(&mut StdRng) -> M) {
        for &pid in &plan.corrupt_processes {
            if pid < self.inboxes.len() {
                self.corrupt_process(pid);
            }
        }
        for &(from, to) in &plan.garbage_channels {
            if to >= self.inboxes.len() {
                continue;
            }
            for _ in 0..plan.garbage_per_channel {
                let msg = gen(&mut self.rng);
                self.inject_as(from, to, msg);
            }
        }
    }

    fn crash(&mut self, pid: ProcessId) {
        let _ = self.inboxes[pid].send(Ctl::Crash);
    }

    fn restart(&mut self, pid: ProcessId, auto: Box<dyn Automaton<M, O>>) {
        self.restart_process(pid, auto);
    }

    fn set_link_fault(&mut self, from: ProcessId, to: ProcessId, fault: Option<LinkFault>) {
        self.set_link_fault_on(from, to, fault);
    }

    fn stop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, Default)]
    struct Ping(u32);

    struct Doubler;
    impl Automaton<Ping, u32> for Doubler {
        fn on_message(&mut self, from: ProcessId, msg: Ping, ctx: &mut Ctx<'_, Ping, u32>) {
            if from == ENV {
                ctx.send(1, msg); // forward to the worker
            } else {
                ctx.output(msg.0); // result came back
            }
        }
    }

    struct Worker2;
    impl Automaton<Ping, u32> for Worker2 {
        fn on_message(&mut self, from: ProcessId, msg: Ping, ctx: &mut Ctx<'_, Ping, u32>) {
            ctx.send(from, Ping(msg.0 * 2));
        }
    }

    #[test]
    fn round_trip_through_threads() {
        let cluster: ThreadedCluster<Ping, u32> =
            ThreadedCluster::spawn(vec![Box::new(Doubler), Box::new(Worker2)], 1);
        let out = cluster.invoke_and_wait(0, Ping(21), Duration::from_secs(5));
        assert_eq!(out, Some(42));
        cluster.shutdown();
    }

    #[test]
    fn fifo_per_producer() {
        struct Seq(Vec<u32>);
        impl Automaton<Ping, Vec<u32>> for Seq {
            fn on_message(
                &mut self,
                _from: ProcessId,
                msg: Ping,
                ctx: &mut Ctx<'_, Ping, Vec<u32>>,
            ) {
                self.0.push(msg.0);
                if self.0.len() == 100 {
                    ctx.output(self.0.clone());
                }
            }
        }
        let cluster: ThreadedCluster<Ping, Vec<u32>> =
            ThreadedCluster::spawn(vec![Box::new(Seq(Vec::new()))], 2);
        for i in 0..100 {
            cluster.send(0, Ping(i));
        }
        let got = cluster.recv_output(0, Duration::from_secs(5)).unwrap();
        assert_eq!(got, (0..100).collect::<Vec<u32>>());
        cluster.shutdown();
    }

    #[test]
    fn shutdown_joins_cleanly() {
        let cluster: ThreadedCluster<Ping, u32> =
            ThreadedCluster::spawn(vec![Box::new(Worker2), Box::new(Worker2)], 3);
        cluster.shutdown();
    }

    #[test]
    fn drop_joins_without_explicit_shutdown() {
        let cluster: ThreadedCluster<Ping, u32> =
            ThreadedCluster::spawn(vec![Box::new(Doubler), Box::new(Worker2)], 7);
        let _ = cluster.invoke_and_wait(0, Ping(1), Duration::from_secs(5));
        drop(cluster); // must terminate promptly, not hang
    }

    #[test]
    fn parallel_clients_all_served() {
        // Many environment commands from multiple user threads; every one
        // gets a response. Exercises MPMC sends into one inbox.
        let cluster: ThreadedCluster<Ping, u32> =
            ThreadedCluster::spawn(vec![Box::new(Doubler), Box::new(Worker2)], 4);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..25 {
                        cluster.send(0, Ping(i));
                    }
                });
            }
        });
        let mut got = 0;
        while cluster.recv_output(0, Duration::from_millis(500)).is_some() {
            got += 1;
        }
        assert_eq!(got, 100);
        cluster.shutdown();
    }

    #[test]
    fn timers_fire_on_threads() {
        /// Emits its tick count each time its timer fires, re-arming twice.
        struct TimerAuto {
            fired: u32,
        }
        impl Automaton<Ping, u32> for TimerAuto {
            fn on_start(&mut self, ctx: &mut Ctx<'_, Ping, u32>) {
                ctx.set_timer(5, 77);
            }
            fn on_timer(&mut self, id: u64, ctx: &mut Ctx<'_, Ping, u32>) {
                assert_eq!(id, 77);
                self.fired += 1;
                ctx.output(self.fired);
                if self.fired < 3 {
                    ctx.set_timer(5, 77);
                }
            }
            fn on_message(&mut self, _: ProcessId, _: Ping, _: &mut Ctx<'_, Ping, u32>) {}
        }
        let cluster: ThreadedCluster<Ping, u32> =
            ThreadedCluster::spawn(vec![Box::new(TimerAuto { fired: 0 })], 5);
        for expect in 1..=3u32 {
            let got = cluster.recv_output(0, Duration::from_secs(5));
            assert_eq!(got, Some(expect));
        }
        cluster.shutdown();
    }

    #[test]
    fn metrics_count_sends_and_deliveries() {
        let mut cluster: ThreadedCluster<Ping, u32> =
            ThreadedCluster::spawn(vec![Box::new(Doubler), Box::new(Worker2)], 6);
        for _ in 0..10 {
            let _ = cluster.invoke_and_wait(0, Ping(2), Duration::from_secs(5));
        }
        let m = cluster.metrics_snapshot();
        // 10 env commands + 10 forwards + 10 replies.
        assert_eq!(m.messages_sent, 30, "{m:?}");
        assert_eq!(m.messages_delivered, 30, "{m:?}");
        assert_eq!(m.sent_by_process(ENV), 10);
        assert_eq!(m.received_by_process(1), 10);
        Substrate::stop(&mut cluster);
    }

    #[test]
    fn crash_drops_subsequent_deliveries() {
        let mut cluster: ThreadedCluster<Ping, u32> =
            ThreadedCluster::spawn(vec![Box::new(Doubler), Box::new(Worker2)], 8);
        Substrate::crash(&mut cluster, 1);
        // Give the crash control a moment to land ahead of traffic.
        std::thread::sleep(Duration::from_millis(20));
        let out = cluster.invoke_and_wait(0, Ping(3), Duration::from_millis(300));
        assert_eq!(out, None, "worker crashed, reply must never come");
        let m = cluster.metrics_snapshot();
        assert!(m.messages_dropped >= 1, "{m:?}");
        Substrate::stop(&mut cluster);
    }

    #[test]
    fn corruption_reaches_the_automaton() {
        struct Corruptible {
            poisoned: bool,
        }
        impl Automaton<Ping, u32> for Corruptible {
            fn on_message(&mut self, _: ProcessId, _: Ping, ctx: &mut Ctx<'_, Ping, u32>) {
                ctx.output(if self.poisoned { 1 } else { 0 });
            }
            fn corrupt(&mut self, _rng: &mut StdRng) {
                self.poisoned = true;
            }
        }
        let mut cluster: ThreadedCluster<Ping, u32> =
            ThreadedCluster::spawn(vec![Box::new(Corruptible { poisoned: false })], 9);
        let plan = FaultPlan {
            corrupt_processes: vec![0],
            garbage_channels: vec![],
            garbage_per_channel: 0,
        };
        Substrate::apply_fault(&mut cluster, &plan, &mut |_rng| Ping(0));
        let out = cluster.invoke_and_wait(0, Ping(0), Duration::from_secs(5));
        assert_eq!(out, Some(1), "corrupt control must precede the probe (FIFO)");
        Substrate::stop(&mut cluster);
    }
}
