//! Network-level measurements collected by the substrates.
//!
//! The experiment harness reports message complexity (messages per
//! operation) and event counts from these counters; per-process tallies
//! support the quorum-cost comparison of experiment E7. The sustained-load
//! experiment E15 additionally records per-operation latencies in a
//! [`LatencyHistogram`].

use std::collections::HashMap;

use crate::process::ProcessId;

/// Number of buckets in a [`LatencyHistogram`]: one per power of two up to
/// `2^62`, plus an overflow bucket. 64 × 8 bytes keeps the histogram small
/// enough to live inside per-client bench state.
const HIST_BUCKETS: usize = 64;

/// A fixed-bucket latency histogram with logarithmic (power-of-two)
/// buckets.
///
/// Bucket `i` counts samples in `[2^i, 2^(i+1))` (bucket 0 also absorbs 0).
/// Percentile queries return the *upper bound* of the bucket holding the
/// requested rank — a conservative estimate whose relative error is bounded
/// by the 2× bucket width, which is plenty for throughput trend tracking
/// (E15) while keeping `record` allocation-free and O(1).
#[derive(Clone, Debug)]
pub struct LatencyHistogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self { buckets: [0; HIST_BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample (any time unit; callers must stay consistent).
    pub fn record(&mut self, sample: u64) {
        // floor(log2(sample)), with 0 landing in bucket 0.
        let idx = (63 - (sample | 1).leading_zeros()) as usize;
        self.buckets[idx.min(HIST_BUCKETS - 1)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(sample);
        self.min = self.min.min(sample);
        self.max = self.max.max(sample);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Upper bound of the bucket containing the `p`-th percentile; the true
    /// sample is within 2× of the returned value and never above `max`.
    ///
    /// Edge-case contract (each of these was previously unspecified or
    /// wrong):
    /// * an **empty** histogram returns 0 for every `p` — no rank exists,
    ///   and 0 is the conventional "no data" value used by the E15 reports;
    /// * `p <= 0` returns the **exact minimum** sample (the nearest-rank
    ///   definition's 0th percentile *is* the minimum, so we report it
    ///   exactly rather than a bucket bound);
    /// * `p >= 100` returns the exact maximum (out-of-range `p` clamps to
    ///   the `[0, 100]` domain, and float rounding such as
    ///   `(100.0 / 100.0) * count` ceiling past `count` can no longer
    ///   overshoot the last occupied bucket).
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if p <= 0.0 {
            return self.min;
        }
        if p >= 100.0 {
            return self.max;
        }
        // Nearest-rank: the ceil of p% of the count, clamped into
        // [1, count] so float rounding can never produce rank 0 or
        // rank count+1 (which would fall off the occupied buckets).
        let rank = (((p / 100.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Bucket i spans [2^i, 2^(i+1)); report the upper bound,
                // clamped to the observed extremes.
                let upper = if i + 1 >= 63 { u64::MAX } else { (1u64 << (i + 1)) - 1 };
                return upper.min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Counters maintained by a [`crate::sim::Simulation`].
#[derive(Clone, Debug, Default)]
pub struct NetMetrics {
    /// Messages handed to channels (including commands from the environment).
    pub messages_sent: u64,
    /// Messages delivered to a live process.
    pub messages_delivered: u64,
    /// Messages dropped (crashed destination, unknown destination).
    pub messages_dropped: u64,
    /// Events processed (deliveries + timers).
    pub events_processed: u64,
    /// Wire frames handed to channels. With link batching disabled this
    /// equals [`NetMetrics::messages_sent`]; with batching enabled one frame
    /// carries up to `max_batch` logical messages.
    pub frames_sent: u64,
    /// Wire frames delivered to a live process.
    pub frames_delivered: u64,
    /// Per-sender message counts.
    pub sent_by: HashMap<ProcessId, u64>,
    /// Per-receiver delivery counts.
    pub received_by: HashMap<ProcessId, u64>,
}

impl NetMetrics {
    pub(crate) fn record_send(&mut self, from: ProcessId, _to: ProcessId) {
        self.messages_sent += 1;
        self.frames_sent += 1;
        *self.sent_by.entry(from).or_insert(0) += 1;
    }

    /// A logical send whose wire frame is accounted separately (the message
    /// entered a link batcher; [`NetMetrics::record_frame_sent`] fires when
    /// its frame ships).
    pub(crate) fn record_logical_send(&mut self, from: ProcessId) {
        self.messages_sent += 1;
        *self.sent_by.entry(from).or_insert(0) += 1;
    }

    pub(crate) fn record_frame_sent(&mut self) {
        self.frames_sent += 1;
    }

    pub(crate) fn record_delivery(&mut self, _from: ProcessId, to: ProcessId) {
        self.messages_delivered += 1;
        self.frames_delivered += 1;
        *self.received_by.entry(to).or_insert(0) += 1;
    }

    /// One delivered frame carrying `batched` logical messages.
    pub(crate) fn record_batch_delivery(&mut self, to: ProcessId, batched: u64) {
        self.messages_delivered += batched;
        self.frames_delivered += 1;
        *self.received_by.entry(to).or_insert(0) += batched;
    }

    pub(crate) fn record_drop(&mut self) {
        self.messages_dropped += 1;
    }

    pub(crate) fn record_event(&mut self) {
        self.events_processed += 1;
    }

    /// Messages sent by a given process.
    pub fn sent_by_process(&self, pid: ProcessId) -> u64 {
        self.sent_by.get(&pid).copied().unwrap_or(0)
    }

    /// Messages delivered to a given process.
    pub fn received_by_process(&self, pid: ProcessId) -> u64 {
        self.received_by.get(&pid).copied().unwrap_or(0)
    }

    /// Difference of two snapshots — the traffic between them.
    pub fn delta_since(&self, earlier: &NetMetrics) -> NetMetrics {
        NetMetrics {
            messages_sent: self.messages_sent - earlier.messages_sent,
            messages_delivered: self.messages_delivered - earlier.messages_delivered,
            messages_dropped: self.messages_dropped - earlier.messages_dropped,
            events_processed: self.events_processed - earlier.events_processed,
            frames_sent: self.frames_sent - earlier.frames_sent,
            frames_delivered: self.frames_delivered - earlier.frames_delivered,
            sent_by: HashMap::new(),
            received_by: HashMap::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = NetMetrics::default();
        m.record_send(0, 1);
        m.record_send(0, 2);
        m.record_send(1, 2);
        m.record_delivery(0, 1);
        m.record_drop();
        m.record_event();
        assert_eq!(m.messages_sent, 3);
        assert_eq!(m.sent_by_process(0), 2);
        assert_eq!(m.sent_by_process(1), 1);
        assert_eq!(m.received_by_process(1), 1);
        assert_eq!(m.messages_dropped, 1);
        assert_eq!(m.events_processed, 1);
        assert_eq!(m.frames_sent, 3, "unbatched sends are one frame each");
        assert_eq!(m.frames_delivered, 1);
    }

    #[test]
    fn batched_frames_split_logical_and_wire_counts() {
        let mut m = NetMetrics::default();
        for _ in 0..5 {
            m.record_logical_send(0);
        }
        m.record_frame_sent();
        m.record_batch_delivery(1, 5);
        assert_eq!(m.messages_sent, 5);
        assert_eq!(m.frames_sent, 1);
        assert_eq!(m.messages_delivered, 5);
        assert_eq!(m.frames_delivered, 1);
        assert_eq!(m.received_by_process(1), 5);
        let d = m.delta_since(&NetMetrics::default());
        assert_eq!(d.frames_sent, 1);
        assert_eq!(d.frames_delivered, 1);
    }

    #[test]
    fn histogram_percentiles_bracket_samples() {
        let mut h = LatencyHistogram::new();
        for s in 1..=1000u64 {
            h.record(s);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max(), 1000);
        // p50 of 1..=1000 is 500; the bucket upper bound for 500 is 511.
        let p50 = h.percentile(50.0);
        assert!((500..=511).contains(&p50), "p50 = {p50}");
        // p99 rank 990 lands in [512, 1023) → clamped to max 1000.
        let p99 = h.percentile(99.0);
        assert!((990..=1000).contains(&p99), "p99 = {p99}");
        assert!((h.mean() - 500.5).abs() < 1.0);
    }

    #[test]
    fn histogram_handles_zero_and_empty() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.mean(), 0.0);
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.percentile(99.0), 0, "sole sample 0 → p99 clamps to max 0");
    }

    #[test]
    fn histogram_merge_accumulates() {
        let (mut a, mut b) = (LatencyHistogram::new(), LatencyHistogram::new());
        for s in [1u64, 2, 4] {
            a.record(s);
        }
        for s in [1024u64, 2048] {
            b.record(s);
        }
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.max(), 2048);
        assert!(a.percentile(100.0) >= 1024);
    }

    #[test]
    fn histogram_empty_is_zero_at_every_percentile() {
        let h = LatencyHistogram::new();
        for p in [0.0, 50.0, 100.0, -5.0, 250.0] {
            assert_eq!(h.percentile(p), 0, "empty histogram at p = {p}");
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn histogram_single_sample_is_exact_at_every_percentile() {
        let mut h = LatencyHistogram::new();
        h.record(777);
        for p in [0.0, 50.0, 100.0] {
            assert_eq!(h.percentile(p), 777, "single sample at p = {p}");
        }
        assert_eq!(h.min(), 777);
        assert_eq!(h.max(), 777);
    }

    #[test]
    fn histogram_p0_is_min_and_p100_is_max() {
        let mut h = LatencyHistogram::new();
        for s in [3u64, 90, 1000, 65_000] {
            h.record(s);
        }
        assert_eq!(h.percentile(0.0), 3, "p0 is the exact minimum");
        assert_eq!(h.percentile(100.0), 65_000, "p100 is the exact maximum");
        // Out-of-range percentiles clamp to the [0, 100] domain.
        assert_eq!(h.percentile(-10.0), h.percentile(0.0));
        assert_eq!(h.percentile(1000.0), h.percentile(100.0));
    }

    #[test]
    fn histogram_merged_percentiles_cover_both_sources() {
        let (mut a, mut b) = (LatencyHistogram::new(), LatencyHistogram::new());
        for s in [2u64, 3, 5] {
            a.record(s);
        }
        for s in [4096u64, 8192, 10_000] {
            b.record(s);
        }
        a.merge(&b);
        assert_eq!(a.count(), 6);
        assert_eq!(a.percentile(0.0), 2, "merge keeps the global minimum");
        assert_eq!(a.percentile(100.0), 10_000, "merge keeps the global maximum");
        // p50 (rank 3) still lies in the low source's range...
        assert!(a.percentile(50.0) <= 7, "p50 = {}", a.percentile(50.0));
        // ...and p90 (rank 6) in the high source's range.
        assert!(a.percentile(90.0) >= 8192, "p90 = {}", a.percentile(90.0));
        // Merging an empty histogram changes nothing.
        let snapshot = a.percentile(0.0);
        a.merge(&LatencyHistogram::new());
        assert_eq!(a.percentile(0.0), snapshot);
    }

    #[test]
    fn histogram_huge_samples_do_not_overflow() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.percentile(50.0), u64::MAX);
    }

    #[test]
    fn delta_subtracts() {
        let mut m = NetMetrics::default();
        m.record_send(0, 1);
        let snap = m.clone();
        m.record_send(0, 1);
        m.record_send(0, 1);
        let d = m.delta_since(&snap);
        assert_eq!(d.messages_sent, 2);
        assert_eq!(d.messages_delivered, 0);
    }
}
