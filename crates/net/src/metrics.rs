//! Network-level measurements collected by the substrates.
//!
//! The experiment harness reports message complexity (messages per
//! operation) and event counts from these counters; per-process tallies
//! support the quorum-cost comparison of experiment E7.

use std::collections::HashMap;

use crate::process::ProcessId;

/// Counters maintained by a [`crate::sim::Simulation`].
#[derive(Clone, Debug, Default)]
pub struct NetMetrics {
    /// Messages handed to channels (including commands from the environment).
    pub messages_sent: u64,
    /// Messages delivered to a live process.
    pub messages_delivered: u64,
    /// Messages dropped (crashed destination, unknown destination).
    pub messages_dropped: u64,
    /// Events processed (deliveries + timers).
    pub events_processed: u64,
    /// Per-sender message counts.
    pub sent_by: HashMap<ProcessId, u64>,
    /// Per-receiver delivery counts.
    pub received_by: HashMap<ProcessId, u64>,
}

impl NetMetrics {
    pub(crate) fn record_send(&mut self, from: ProcessId, _to: ProcessId) {
        self.messages_sent += 1;
        *self.sent_by.entry(from).or_insert(0) += 1;
    }

    pub(crate) fn record_delivery(&mut self, _from: ProcessId, to: ProcessId) {
        self.messages_delivered += 1;
        *self.received_by.entry(to).or_insert(0) += 1;
    }

    pub(crate) fn record_drop(&mut self) {
        self.messages_dropped += 1;
    }

    pub(crate) fn record_event(&mut self) {
        self.events_processed += 1;
    }

    /// Messages sent by a given process.
    pub fn sent_by_process(&self, pid: ProcessId) -> u64 {
        self.sent_by.get(&pid).copied().unwrap_or(0)
    }

    /// Messages delivered to a given process.
    pub fn received_by_process(&self, pid: ProcessId) -> u64 {
        self.received_by.get(&pid).copied().unwrap_or(0)
    }

    /// Difference of two snapshots — the traffic between them.
    pub fn delta_since(&self, earlier: &NetMetrics) -> NetMetrics {
        NetMetrics {
            messages_sent: self.messages_sent - earlier.messages_sent,
            messages_delivered: self.messages_delivered - earlier.messages_delivered,
            messages_dropped: self.messages_dropped - earlier.messages_dropped,
            events_processed: self.events_processed - earlier.events_processed,
            sent_by: HashMap::new(),
            received_by: HashMap::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = NetMetrics::default();
        m.record_send(0, 1);
        m.record_send(0, 2);
        m.record_send(1, 2);
        m.record_delivery(0, 1);
        m.record_drop();
        m.record_event();
        assert_eq!(m.messages_sent, 3);
        assert_eq!(m.sent_by_process(0), 2);
        assert_eq!(m.sent_by_process(1), 1);
        assert_eq!(m.received_by_process(1), 1);
        assert_eq!(m.messages_dropped, 1);
        assert_eq!(m.events_processed, 1);
    }

    #[test]
    fn delta_subtracts() {
        let mut m = NetMetrics::default();
        m.record_send(0, 1);
        let snap = m.clone();
        m.record_send(0, 1);
        m.record_send(0, 1);
        let d = m.delta_since(&snap);
        assert_eq!(d.messages_sent, 2);
        assert_eq!(d.messages_delivered, 0);
    }
}
