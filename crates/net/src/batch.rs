//! Per-directed-link message coalescing.
//!
//! The paper's protocol broadcasts to all `n` servers in every phase, so a
//! client operation costs ~28–33 *logical* messages. Most of them travel the
//! same few directed links within the same instant of a pump round, which is
//! exactly the situation link batching exploits: a [`LinkBatcher`] queues
//! outgoing messages per `(src, dst)` link and the substrate ships each queue
//! as one [`Frame`] — one wire transfer, one delivery event — either when the
//! queue reaches the **size watermark** (`max_batch`) or when the **tick
//! watermark** (`flush_ticks`) expires for messages that would otherwise
//! linger. Replies and acks produced while a frame is being applied coalesce
//! into frames of their own (batch-in → batch-out), which is how FLUSH_ACKs
//! piggyback on data frames without a dedicated message type.
//!
//! FIFO is preserved per link: messages enter a link's queue in send order,
//! a size-triggered frame carries the whole queue, and a tick-triggered flush
//! drains the remainder behind it on the same channel — so the receiver
//! observes exactly the unbatched per-link order. Batching never reorders,
//! only re-frames.
//!
//! Accounting: `messages_sent`/`messages_delivered` keep counting *logical*
//! messages (protocol cost, comparable across all experiments) while
//! `frames_sent`/`frames_delivered` count wire transfers. With batching
//! disabled the two coincide.

use std::collections::HashMap;

use crate::process::ProcessId;

/// When a link's pending queue ships as a [`Frame`].
///
/// The default policy is **disabled** (`max_batch == 1`): every message
/// ships immediately as its own frame, byte-for-byte the pre-batching
/// behavior (and the same RNG stream, so seeded executions are unchanged).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Size watermark: a link's queue ships the moment it holds this many
    /// messages. `1` disables batching entirely.
    pub max_batch: usize,
    /// Tick watermark: pending messages that have not reached the size
    /// watermark ship at most this many ticks after the first of them was
    /// queued (sim: virtual ticks; threaded: wheel ticks).
    pub flush_ticks: u64,
}

impl BatchPolicy {
    /// Batching off: one frame per message (the default).
    pub const fn disabled() -> Self {
        Self { max_batch: 1, flush_ticks: 1 }
    }

    /// Coalesce up to `max_batch` messages per link, flushing stragglers
    /// after `flush_ticks`.
    pub fn new(max_batch: usize, flush_ticks: u64) -> Self {
        Self { max_batch: max_batch.max(1), flush_ticks: flush_ticks.max(1) }
    }

    /// Whether this policy actually coalesces anything.
    pub fn enabled(&self) -> bool {
        self.max_batch > 1
    }
}

impl Default for BatchPolicy {
    fn default() -> Self {
        Self::disabled()
    }
}

/// What actually travels on a channel: a single message or a coalesced batch.
///
/// Both substrates move `Frame<M>` internally when batching is enabled; the
/// automata above never see frames — the substrate unpacks a batch into
/// consecutive `on_message` calls sharing one context.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame<M> {
    /// An unbatched message (also used for a flushed queue of length one).
    One(M),
    /// A coalesced queue of ≥ 2 messages from the same directed link, in
    /// send order.
    Batch(Vec<M>),
}

impl<M> Frame<M> {
    /// Wrap a drained link queue, collapsing singletons.
    pub fn from_queue(mut msgs: Vec<M>) -> Self {
        if msgs.len() == 1 {
            Frame::One(msgs.pop().expect("len checked"))
        } else {
            Frame::Batch(msgs)
        }
    }

    /// Number of logical messages carried.
    pub fn len(&self) -> usize {
        match self {
            Frame::One(_) => 1,
            Frame::Batch(v) => v.len(),
        }
    }

    /// True when the frame carries no messages (never produced by the
    /// batcher; present for completeness).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Pending per-link queues for one sender side.
///
/// Iteration order is deterministic: links drain in the order their queues
/// first became non-empty, independent of hash-map layout, so seeded
/// executions replay exactly.
#[derive(Debug, Default)]
pub struct LinkBatcher<M> {
    pending: HashMap<(ProcessId, ProcessId), Vec<M>>,
    /// Links with a non-empty queue, in first-push order.
    order: Vec<(ProcessId, ProcessId)>,
    len: usize,
}

impl<M> LinkBatcher<M> {
    /// An empty batcher.
    pub fn new() -> Self {
        Self { pending: HashMap::new(), order: Vec::new(), len: 0 }
    }

    /// Queue `msg` on the `(from, to)` link. Returns the full queue when it
    /// reached `max_batch` (the caller ships it as one frame immediately);
    /// otherwise the message waits for the size or tick watermark.
    pub fn push(
        &mut self,
        from: ProcessId,
        to: ProcessId,
        msg: M,
        max_batch: usize,
    ) -> Option<Vec<M>> {
        let queue = self.pending.entry((from, to)).or_default();
        if queue.is_empty() {
            self.order.push((from, to));
        }
        queue.push(msg);
        self.len += 1;
        if queue.len() >= max_batch {
            self.len -= queue.len();
            let full = std::mem::take(queue);
            self.order.retain(|&l| l != (from, to));
            Some(full)
        } else {
            None
        }
    }

    /// Drain every pending queue, in deterministic first-push link order.
    pub fn drain_all(&mut self) -> Vec<((ProcessId, ProcessId), Vec<M>)> {
        let mut out = Vec::with_capacity(self.order.len());
        for link in std::mem::take(&mut self.order) {
            if let Some(queue) = self.pending.remove(&link) {
                if !queue.is_empty() {
                    out.push((link, queue));
                }
            }
        }
        self.len = 0;
        out
    }

    /// Total messages waiting across all links.
    pub fn pending_len(&self) -> usize {
        self.len
    }

    /// True when nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_policy_ships_every_message_immediately() {
        let mut b: LinkBatcher<u32> = LinkBatcher::new();
        let p = BatchPolicy::disabled();
        assert!(!p.enabled());
        assert_eq!(b.push(0, 1, 7, p.max_batch), Some(vec![7]));
        assert!(b.is_empty());
    }

    #[test]
    fn size_watermark_ships_a_full_queue() {
        let mut b: LinkBatcher<u32> = LinkBatcher::new();
        assert_eq!(b.push(0, 1, 10, 3), None);
        assert_eq!(b.push(0, 1, 11, 3), None);
        assert_eq!(b.pending_len(), 2);
        assert_eq!(b.push(0, 1, 12, 3), Some(vec![10, 11, 12]));
        assert!(b.is_empty());
    }

    #[test]
    fn links_batch_independently_and_drain_in_first_push_order() {
        let mut b: LinkBatcher<u32> = LinkBatcher::new();
        b.push(0, 2, 1, 10);
        b.push(0, 1, 2, 10);
        b.push(0, 2, 3, 10);
        let drained = b.drain_all();
        assert_eq!(drained, vec![((0, 2), vec![1, 3]), ((0, 1), vec![2])]);
        assert!(b.is_empty());
        assert!(b.drain_all().is_empty());
    }

    #[test]
    fn frame_collapses_singletons() {
        assert_eq!(Frame::from_queue(vec![5u32]), Frame::One(5));
        assert_eq!(Frame::from_queue(vec![5u32, 6]).len(), 2);
        assert_eq!(Frame::One(5u32).len(), 1);
        assert!(!Frame::One(5u32).is_empty());
    }

    #[test]
    fn policy_constructor_clamps_degenerate_values() {
        let p = BatchPolicy::new(0, 0);
        assert_eq!(p.max_batch, 1);
        assert_eq!(p.flush_ticks, 1);
        assert!(BatchPolicy::new(16, 4).enabled());
    }
}
