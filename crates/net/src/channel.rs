//! Reliable FIFO point-to-point channel bookkeeping for the simulator.
//!
//! The paper assumes channels that neither create, modify, nor lose
//! messages and that deliver in FIFO order (Section II). In the simulator a
//! message sent at time `t` over channel `(a, b)` is scheduled for delivery
//! at `max(t + delay, last scheduled delivery on (a, b) + 1)`, so arbitrary
//! asynchrony is modelled while per-channel ordering is strict.
//!
//! Channels can additionally be **held**: a held channel buffers messages
//! instead of scheduling them, and releases them in order on demand. This is
//! the mechanism scripted adversarial schedules (the "slow server" of the
//! Theorem 1 proof) use to steer executions precisely.
//!
//! Orthogonally, a channel can carry a [`LinkFault`]: per-message drop and
//! duplication probabilities plus a constant extra delay, set and cleared at
//! runtime by the nemesis. Faulty links still never reorder — a duplicate is
//! scheduled immediately after its original, and survivors keep FIFO order —
//! so the fault model degrades the *reliability* assumption of Section II
//! while leaving the ordering assumption intact.

use std::collections::HashMap;
use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::Rng;

use crate::nemesis::LinkFault;
use crate::process::ProcessId;

/// Message delay distribution: uniform in `[min, max]` virtual time units.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DelayModel {
    /// Minimum delay (≥ 1 to keep sends strictly in the future).
    pub min: u64,
    /// Maximum delay (inclusive).
    pub max: u64,
}

impl DelayModel {
    /// Uniform delays in `[min, max]`.
    pub fn uniform(min: u64, max: u64) -> Self {
        assert!(min >= 1, "delays must be at least 1 tick");
        assert!(min <= max, "empty delay range");
        Self { min, max }
    }

    /// Constant unit delay — a synchronous network, useful in unit tests.
    pub fn unit() -> Self {
        Self { min: 1, max: 1 }
    }

    /// Sample a delay.
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        if self.min == self.max {
            self.min
        } else {
            rng.gen_range(self.min..=self.max)
        }
    }
}

impl Default for DelayModel {
    fn default() -> Self {
        Self::uniform(1, 10)
    }
}

/// Per-ordered-pair channel state.
#[derive(Debug, Default)]
struct ChannelState<M> {
    /// Latest delivery time already scheduled on this channel.
    last_delivery: u64,
    /// Held (unscheduled) messages while the channel is paused.
    held: VecDeque<M>,
    /// Whether the channel currently buffers instead of delivering.
    paused: bool,
    /// Active link fault, if any.
    fault: Option<LinkFault>,
}

/// Outcome of scheduling one message on a channel.
#[derive(Clone, Debug)]
pub enum Scheduled<M> {
    /// Channel paused: the message was buffered for a later resume.
    Held,
    /// A link fault dropped the message.
    Dropped,
    /// Deliver `msg` at time `at`; `dup_at`, when set, is the delivery time
    /// of a fault-induced duplicate of the same message.
    Deliver {
        /// Delivery time.
        at: u64,
        /// The message.
        msg: M,
        /// Delivery time of a duplicate copy, if the fault duplicated.
        dup_at: Option<u64>,
    },
}

impl<M> Scheduled<M> {
    /// The primary delivery, if one was scheduled (convenience for tests).
    pub fn delivery(self) -> Option<(u64, M)> {
        match self {
            Scheduled::Deliver { at, msg, .. } => Some((at, msg)),
            _ => None,
        }
    }
}

/// All channels of a simulation.
#[derive(Debug)]
pub struct ChannelMap<M> {
    delay: DelayModel,
    states: HashMap<(ProcessId, ProcessId), ChannelState<M>>,
}

impl<M> ChannelMap<M> {
    /// Create with the given delay model.
    pub fn new(delay: DelayModel) -> Self {
        Self { delay, states: HashMap::new() }
    }

    /// The configured delay model.
    pub fn delay_model(&self) -> DelayModel {
        self.delay
    }

    fn state(&mut self, from: ProcessId, to: ProcessId) -> &mut ChannelState<M> {
        self.states.entry((from, to)).or_insert_with(|| ChannelState {
            last_delivery: 0,
            held: VecDeque::new(),
            paused: false,
            fault: None,
        })
    }

    /// Compute the FIFO-respecting delivery time for a message sent `now`,
    /// buffer it if the channel is paused, or drop/duplicate/delay it per
    /// the channel's active [`LinkFault`].
    ///
    /// The delay is sampled *before* the fault is consulted, so executions
    /// on channels that never carried a fault draw the identical random
    /// stream as before the fault machinery existed (seed compatibility).
    pub fn schedule(
        &mut self,
        from: ProcessId,
        to: ProcessId,
        now: u64,
        msg: M,
        rng: &mut StdRng,
    ) -> Scheduled<M> {
        let delay = self.delay.sample(rng);
        let fault = self.states.get(&(from, to)).and_then(|s| s.fault);
        if self.state(from, to).paused {
            self.state(from, to).held.push_back(msg);
            return Scheduled::Held;
        }
        if let Some(f) = fault {
            if f.drop_rate > 0.0 && rng.gen_bool(f.drop_rate.min(1.0)) {
                return Scheduled::Dropped;
            }
        }
        let extra = fault.map_or(0, |f| f.extra_delay);
        let duplicate = match fault {
            Some(f) if f.dup_rate > 0.0 => rng.gen_bool(f.dup_rate.min(1.0)),
            _ => false,
        };
        let st = self.state(from, to);
        let t = (now + delay + extra).max(st.last_delivery + 1);
        st.last_delivery = t;
        let dup_at = duplicate.then(|| {
            let t2 = st.last_delivery + 1;
            st.last_delivery = t2;
            t2
        });
        Scheduled::Deliver { at: t, msg, dup_at }
    }

    /// Install (`Some`) or clear (`None`) a link fault on `(from, to)`.
    pub fn set_fault(&mut self, from: ProcessId, to: ProcessId, fault: Option<LinkFault>) {
        self.state(from, to).fault = fault;
    }

    /// The active fault on `(from, to)`, if any.
    pub fn fault(&self, from: ProcessId, to: ProcessId) -> Option<LinkFault> {
        self.states.get(&(from, to)).and_then(|s| s.fault)
    }

    /// Pause the channel `(from, to)`: subsequent (and only subsequent)
    /// messages are buffered in order.
    pub fn pause(&mut self, from: ProcessId, to: ProcessId) {
        self.state(from, to).paused = true;
    }

    /// Whether the channel is paused.
    pub fn is_paused(&self, from: ProcessId, to: ProcessId) -> bool {
        self.states.get(&(from, to)).map(|s| s.paused).unwrap_or(false)
    }

    /// Resume the channel, returning the held messages (in FIFO order) with
    /// their computed delivery times, ready to be scheduled.
    pub fn resume(
        &mut self,
        from: ProcessId,
        to: ProcessId,
        now: u64,
        rng: &mut StdRng,
    ) -> Vec<(u64, M)> {
        let delay = self.delay;
        let st = self.state(from, to);
        st.paused = false;
        let held: Vec<M> = st.held.drain(..).collect();
        let mut out = Vec::with_capacity(held.len());
        for msg in held {
            let d = delay.sample(rng);
            let t = (now + d).max(st.last_delivery + 1);
            st.last_delivery = t;
            out.push((t, msg));
        }
        out
    }

    /// Number of held messages on a paused channel.
    pub fn held_count(&self, from: ProcessId, to: ProcessId) -> usize {
        self.states.get(&(from, to)).map(|s| s.held.len()).unwrap_or(0)
    }

    /// Whether any channel is currently paused or buffering held messages —
    /// state that lives outside the event queue, which the explorer's
    /// state digest refuses to fingerprint.
    pub fn any_paused_or_held(&self) -> bool {
        self.states.values().any(|s| s.paused || !s.held.is_empty())
    }

    /// Whether any channel carries an active link fault. Faulty channels
    /// consume RNG per send, making the RNG cursor hidden state.
    pub fn any_faulted(&self) -> bool {
        self.states.values().any(|s| s.fault.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn fifo_order_is_strict() {
        let mut ch: ChannelMap<u32> = ChannelMap::new(DelayModel::uniform(1, 100));
        let mut r = rng();
        let mut last = 0;
        for i in 0..50 {
            let (t, _) = ch.schedule(0, 1, 0, i, &mut r).delivery().unwrap();
            assert!(t > last, "delivery times must strictly increase per channel");
            last = t;
        }
    }

    #[test]
    fn independent_channels_do_not_interfere() {
        let mut ch: ChannelMap<u32> = ChannelMap::new(DelayModel::unit());
        let mut r = rng();
        let (t1, _) = ch.schedule(0, 1, 0, 1, &mut r).delivery().unwrap();
        let (t2, _) = ch.schedule(1, 0, 0, 2, &mut r).delivery().unwrap();
        assert_eq!(t1, 1);
        assert_eq!(t2, 1);
    }

    #[test]
    fn pause_buffers_and_resume_preserves_order() {
        let mut ch: ChannelMap<u32> = ChannelMap::new(DelayModel::unit());
        let mut r = rng();
        ch.pause(0, 1);
        assert!(matches!(ch.schedule(0, 1, 5, 10, &mut r), Scheduled::Held));
        assert!(matches!(ch.schedule(0, 1, 6, 11, &mut r), Scheduled::Held));
        assert_eq!(ch.held_count(0, 1), 2);
        let released = ch.resume(0, 1, 100, &mut r);
        let msgs: Vec<u32> = released.iter().map(|&(_, m)| m).collect();
        assert_eq!(msgs, vec![10, 11]);
        assert!(released[0].0 < released[1].0);
        assert!(released[0].0 > 100);
    }

    #[test]
    fn resume_respects_prior_deliveries() {
        let mut ch: ChannelMap<u32> = ChannelMap::new(DelayModel::unit());
        let mut r = rng();
        let (t0, _) = ch.schedule(0, 1, 50, 1, &mut r).delivery().unwrap();
        ch.pause(0, 1);
        ch.schedule(0, 1, 51, 2, &mut r);
        let rel = ch.resume(0, 1, 52, &mut r);
        assert!(rel[0].0 > t0);
    }

    #[test]
    fn cut_link_drops_everything_until_cleared() {
        let mut ch: ChannelMap<u32> = ChannelMap::new(DelayModel::unit());
        let mut r = rng();
        ch.set_fault(0, 1, Some(LinkFault::cut()));
        for i in 0..10 {
            assert!(matches!(ch.schedule(0, 1, 0, i, &mut r), Scheduled::Dropped));
        }
        ch.set_fault(0, 1, None);
        assert!(ch.schedule(0, 1, 0, 99, &mut r).delivery().is_some());
    }

    #[test]
    fn duplication_schedules_a_later_copy_and_keeps_fifo() {
        let mut ch: ChannelMap<u32> = ChannelMap::new(DelayModel::unit());
        let mut r = rng();
        ch.set_fault(0, 1, Some(LinkFault::flaky(0.0, 1.0, 0)));
        let Scheduled::Deliver { at, dup_at, .. } = ch.schedule(0, 1, 0, 7, &mut r) else {
            panic!("expected delivery");
        };
        let dup_at = dup_at.expect("dup_rate=1 must duplicate");
        assert!(dup_at > at);
        // The next message lands strictly after the duplicate.
        let (t2, _) = ch.schedule(0, 1, 0, 8, &mut r).delivery().unwrap();
        assert!(t2 > dup_at);
    }

    #[test]
    fn extra_delay_shifts_deliveries() {
        let mut ch: ChannelMap<u32> = ChannelMap::new(DelayModel::unit());
        let mut r = rng();
        ch.set_fault(0, 1, Some(LinkFault::flaky(0.0, 0.0, 50)));
        let (t, _) = ch.schedule(0, 1, 0, 1, &mut r).delivery().unwrap();
        assert_eq!(t, 51);
    }

    #[test]
    fn unfaulted_channels_sample_one_delay_per_message() {
        // Seed compatibility: the RNG stream on clean channels must be the
        // single delay draw it always was, fault machinery or not.
        let mut a: ChannelMap<u32> = ChannelMap::new(DelayModel::uniform(1, 100));
        let mut b: ChannelMap<u32> = ChannelMap::new(DelayModel::uniform(1, 100));
        let mut ra = rng();
        let mut rb = rng();
        b.set_fault(2, 3, Some(LinkFault::cut())); // fault on an unrelated pair
        for i in 0..20 {
            let ta = a.schedule(0, 1, 0, i, &mut ra).delivery().unwrap().0;
            let tb = b.schedule(0, 1, 0, i, &mut rb).delivery().unwrap().0;
            assert_eq!(ta, tb);
        }
    }

    #[test]
    fn delay_model_bounds() {
        let m = DelayModel::uniform(3, 9);
        let mut r = rng();
        for _ in 0..100 {
            let d = m.sample(&mut r);
            assert!((3..=9).contains(&d));
        }
    }

    #[test]
    #[should_panic]
    fn zero_min_delay_rejected() {
        DelayModel::uniform(0, 5);
    }
}
