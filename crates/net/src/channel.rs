//! Reliable FIFO point-to-point channel bookkeeping for the simulator.
//!
//! The paper assumes channels that neither create, modify, nor lose
//! messages and that deliver in FIFO order (Section II). In the simulator a
//! message sent at time `t` over channel `(a, b)` is scheduled for delivery
//! at `max(t + delay, last scheduled delivery on (a, b) + 1)`, so arbitrary
//! asynchrony is modelled while per-channel ordering is strict.
//!
//! Channels can additionally be **held**: a held channel buffers messages
//! instead of scheduling them, and releases them in order on demand. This is
//! the mechanism scripted adversarial schedules (the "slow server" of the
//! Theorem 1 proof) use to steer executions precisely.

use std::collections::HashMap;
use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::Rng;

use crate::process::ProcessId;

/// Message delay distribution: uniform in `[min, max]` virtual time units.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DelayModel {
    /// Minimum delay (≥ 1 to keep sends strictly in the future).
    pub min: u64,
    /// Maximum delay (inclusive).
    pub max: u64,
}

impl DelayModel {
    /// Uniform delays in `[min, max]`.
    pub fn uniform(min: u64, max: u64) -> Self {
        assert!(min >= 1, "delays must be at least 1 tick");
        assert!(min <= max, "empty delay range");
        Self { min, max }
    }

    /// Constant unit delay — a synchronous network, useful in unit tests.
    pub fn unit() -> Self {
        Self { min: 1, max: 1 }
    }

    /// Sample a delay.
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        if self.min == self.max {
            self.min
        } else {
            rng.gen_range(self.min..=self.max)
        }
    }
}

impl Default for DelayModel {
    fn default() -> Self {
        Self::uniform(1, 10)
    }
}

/// Per-ordered-pair channel state.
#[derive(Debug, Default)]
struct ChannelState<M> {
    /// Latest delivery time already scheduled on this channel.
    last_delivery: u64,
    /// Held (unscheduled) messages while the channel is paused.
    held: VecDeque<M>,
    /// Whether the channel currently buffers instead of delivering.
    paused: bool,
}

/// All channels of a simulation.
#[derive(Debug)]
pub struct ChannelMap<M> {
    delay: DelayModel,
    states: HashMap<(ProcessId, ProcessId), ChannelState<M>>,
}

impl<M> ChannelMap<M> {
    /// Create with the given delay model.
    pub fn new(delay: DelayModel) -> Self {
        Self { delay, states: HashMap::new() }
    }

    /// The configured delay model.
    pub fn delay_model(&self) -> DelayModel {
        self.delay
    }

    fn state(&mut self, from: ProcessId, to: ProcessId) -> &mut ChannelState<M> {
        self.states.entry((from, to)).or_insert_with(|| ChannelState {
            last_delivery: 0,
            held: VecDeque::new(),
            paused: false,
        })
    }

    /// Compute the FIFO-respecting delivery time for a message sent `now`,
    /// or buffer it if the channel is paused. Returns `Some(delivery_time)`
    /// when the message should be scheduled.
    pub fn schedule(
        &mut self,
        from: ProcessId,
        to: ProcessId,
        now: u64,
        msg: M,
        rng: &mut StdRng,
    ) -> Option<(u64, M)> {
        let delay = self.delay.sample(rng);
        let st = self.state(from, to);
        if st.paused {
            st.held.push_back(msg);
            return None;
        }
        let t = (now + delay).max(st.last_delivery + 1);
        st.last_delivery = t;
        Some((t, msg))
    }

    /// Pause the channel `(from, to)`: subsequent (and only subsequent)
    /// messages are buffered in order.
    pub fn pause(&mut self, from: ProcessId, to: ProcessId) {
        self.state(from, to).paused = true;
    }

    /// Whether the channel is paused.
    pub fn is_paused(&self, from: ProcessId, to: ProcessId) -> bool {
        self.states.get(&(from, to)).map(|s| s.paused).unwrap_or(false)
    }

    /// Resume the channel, returning the held messages (in FIFO order) with
    /// their computed delivery times, ready to be scheduled.
    pub fn resume(
        &mut self,
        from: ProcessId,
        to: ProcessId,
        now: u64,
        rng: &mut StdRng,
    ) -> Vec<(u64, M)> {
        let delay = self.delay;
        let st = self.state(from, to);
        st.paused = false;
        let held: Vec<M> = st.held.drain(..).collect();
        let mut out = Vec::with_capacity(held.len());
        for msg in held {
            let d = delay.sample(rng);
            let t = (now + d).max(st.last_delivery + 1);
            st.last_delivery = t;
            out.push((t, msg));
        }
        out
    }

    /// Number of held messages on a paused channel.
    pub fn held_count(&self, from: ProcessId, to: ProcessId) -> usize {
        self.states.get(&(from, to)).map(|s| s.held.len()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn fifo_order_is_strict() {
        let mut ch: ChannelMap<u32> = ChannelMap::new(DelayModel::uniform(1, 100));
        let mut r = rng();
        let mut last = 0;
        for i in 0..50 {
            let (t, _) = ch.schedule(0, 1, 0, i, &mut r).unwrap();
            assert!(t > last, "delivery times must strictly increase per channel");
            last = t;
        }
    }

    #[test]
    fn independent_channels_do_not_interfere() {
        let mut ch: ChannelMap<u32> = ChannelMap::new(DelayModel::unit());
        let mut r = rng();
        let (t1, _) = ch.schedule(0, 1, 0, 1, &mut r).unwrap();
        let (t2, _) = ch.schedule(1, 0, 0, 2, &mut r).unwrap();
        assert_eq!(t1, 1);
        assert_eq!(t2, 1);
    }

    #[test]
    fn pause_buffers_and_resume_preserves_order() {
        let mut ch: ChannelMap<u32> = ChannelMap::new(DelayModel::unit());
        let mut r = rng();
        ch.pause(0, 1);
        assert!(ch.schedule(0, 1, 5, 10, &mut r).is_none());
        assert!(ch.schedule(0, 1, 6, 11, &mut r).is_none());
        assert_eq!(ch.held_count(0, 1), 2);
        let released = ch.resume(0, 1, 100, &mut r);
        let msgs: Vec<u32> = released.iter().map(|&(_, m)| m).collect();
        assert_eq!(msgs, vec![10, 11]);
        assert!(released[0].0 < released[1].0);
        assert!(released[0].0 > 100);
    }

    #[test]
    fn resume_respects_prior_deliveries() {
        let mut ch: ChannelMap<u32> = ChannelMap::new(DelayModel::unit());
        let mut r = rng();
        let (t0, _) = ch.schedule(0, 1, 50, 1, &mut r).unwrap();
        ch.pause(0, 1);
        ch.schedule(0, 1, 51, 2, &mut r);
        let rel = ch.resume(0, 1, 52, &mut r);
        assert!(rel[0].0 > t0);
    }

    #[test]
    fn delay_model_bounds() {
        let m = DelayModel::uniform(3, 9);
        let mut r = rng();
        for _ in 0..100 {
            let d = m.sample(&mut r);
            assert!((3..=9).contains(&d));
        }
    }

    #[test]
    #[should_panic]
    fn zero_min_delay_rejected() {
        DelayModel::uniform(0, 5);
    }
}
