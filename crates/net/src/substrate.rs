//! The substrate abstraction: one driver surface over both runtimes.
//!
//! A *substrate* is anything that can host a set of [`Automaton`] processes
//! and let a driver inject environment commands, drain timestamped outputs,
//! inject transient faults, and read [`NetMetrics`]. The two
//! implementations are the deterministic discrete-event [`Simulation`]
//! (virtual time, replayable schedules) and the [`ThreadedCluster`]
//! (one OS thread per process, wall-clock time measured in ticks).
//! Scenario drivers written against [`Substrate`] run the same protocol
//! unchanged on either — correctness work on the simulator, wall-clock
//! measurements on threads — selected at runtime through [`Backend`] and
//! [`AnySubstrate`].

use std::fmt::Debug;
use std::time::Duration;

use rand::rngs::StdRng;

use crate::batch::BatchPolicy;
use crate::channel::DelayModel;
use crate::corruption::FaultPlan;
use crate::metrics::NetMetrics;
use crate::nemesis::LinkFault;
use crate::process::{Automaton, ProcessId};
use crate::sim::{SimConfig, Simulation};
use crate::threaded::ThreadedCluster;
use crate::trace::Trace;

/// Which runtime a driver should assemble.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// The deterministic discrete-event simulator.
    Sim,
    /// The one-OS-thread-per-process runtime.
    Threaded,
}

/// Substrate-independent construction parameters.
///
/// The simulator consumes `seed`, `delay` and `trace_capacity`; the
/// threaded runtime additionally maps virtual time onto the wall clock via
/// `tick` (timer delays of `d` units fire after `d × tick`) and bounds its
/// blocking behaviour with `pump_timeout` (one [`Substrate::pump`] wait)
/// and `join_timeout` (graceful stop).
#[derive(Clone, Copy, Debug)]
pub struct SubstrateConfig {
    /// Seed for all substrate randomness.
    pub seed: u64,
    /// Message delay distribution (simulator only; threads deliver asap).
    pub delay: DelayModel,
    /// Debug-trace ring capacity (0 disables tracing).
    pub trace_capacity: usize,
    /// Wall-clock length of one virtual time unit on threads.
    pub tick: Duration,
    /// Longest a single threaded `pump` blocks before reporting idle.
    pub pump_timeout: Duration,
    /// Bound on waiting for worker threads to exit during stop/drop.
    pub join_timeout: Duration,
    /// Per-link message coalescing policy (both substrates; disabled by
    /// default so seeded executions are unchanged).
    pub batch: BatchPolicy,
}

impl Default for SubstrateConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            delay: DelayModel::default(),
            trace_capacity: 0,
            tick: Duration::from_micros(100),
            pump_timeout: Duration::from_millis(100),
            join_timeout: Duration::from_secs(5),
            batch: BatchPolicy::disabled(),
        }
    }
}

impl SubstrateConfig {
    /// Config with a specific seed and defaults otherwise.
    pub fn seeded(seed: u64) -> Self {
        Self { seed, ..Self::default() }
    }

    /// Replace the delay model.
    pub fn with_delay(mut self, delay: DelayModel) -> Self {
        self.delay = delay;
        self
    }

    /// Enable the debug trace.
    pub fn with_trace(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Replace the threaded tick length.
    pub fn with_tick(mut self, tick: Duration) -> Self {
        self.tick = tick;
        self
    }

    /// Replace the threaded pump timeout — the longest one blocking
    /// [`Substrate::pump`] waits before reporting [`Pumped::Idle`].
    /// Open-loop drivers that pace injections between pumps want this
    /// close to their arrival interval.
    pub fn with_pump_timeout(mut self, timeout: Duration) -> Self {
        self.pump_timeout = timeout;
        self
    }

    /// Replace the link-batching policy.
    pub fn with_batching(mut self, batch: BatchPolicy) -> Self {
        self.batch = batch;
        self
    }

    /// The simulator subset of this config.
    pub fn sim_config(&self) -> SimConfig {
        SimConfig {
            seed: self.seed,
            delay: self.delay,
            trace_capacity: self.trace_capacity,
            batch: self.batch,
        }
    }
}

/// Outputs carried by one [`Pumped::Event`] without forcing a heap
/// allocation in the common cases: simulator events usually emit zero or
/// one output, and the threaded runtime surfaces exactly one output per
/// event. Iterate it directly (`for o in outputs`) — it is `IntoIterator`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum Outputs<O> {
    /// No observable output (pure message handling).
    #[default]
    None,
    /// Exactly one output, held inline.
    One(O),
    /// Two or more outputs from a single event.
    Many(Vec<O>),
}

impl<O> Outputs<O> {
    /// Number of outputs carried.
    pub fn len(&self) -> usize {
        match self {
            Outputs::None => 0,
            Outputs::One(_) => 1,
            Outputs::Many(v) => v.len(),
        }
    }

    /// Whether no outputs are carried.
    pub fn is_empty(&self) -> bool {
        matches!(self, Outputs::None) || matches!(self, Outputs::Many(v) if v.is_empty())
    }

    /// Borrowing iterator over the outputs.
    pub fn iter(&self) -> std::slice::Iter<'_, O> {
        match self {
            Outputs::None => [].iter(),
            Outputs::One(o) => std::slice::from_ref(o).iter(),
            Outputs::Many(v) => v.iter(),
        }
    }

    /// Convert into a `Vec` (allocates only in the `One` case).
    pub fn into_vec(self) -> Vec<O> {
        match self {
            Outputs::None => Vec::new(),
            Outputs::One(o) => vec![o],
            Outputs::Many(v) => v,
        }
    }
}

impl<O> From<Vec<O>> for Outputs<O> {
    fn from(mut v: Vec<O>) -> Self {
        match v.len() {
            0 => Outputs::None,
            1 => Outputs::One(v.pop().expect("len checked")),
            _ => Outputs::Many(v),
        }
    }
}

impl<O> From<O> for Outputs<O> {
    fn from(o: O) -> Self {
        Outputs::One(o)
    }
}

impl<O> IntoIterator for Outputs<O> {
    type Item = O;
    type IntoIter = std::vec::IntoIter<O>;

    fn into_iter(self) -> Self::IntoIter {
        // Vec's iterator for all arities keeps the type simple; the One
        // case allocates only when actually iterated by value, which the
        // hot threaded paths (recv_output / visit callbacks) avoid.
        self.into_vec().into_iter()
    }
}

impl<'a, O> IntoIterator for &'a Outputs<O> {
    type Item = &'a O;
    type IntoIter = std::slice::Iter<'a, O>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Result of one [`Substrate::pump`] call.
#[derive(Clone, Debug)]
pub enum Pumped<O> {
    /// A process acted; `outputs` may be empty (pure message handling).
    Event {
        /// Virtual time (simulator) or elapsed ticks (threads).
        time: u64,
        /// The process that acted.
        pid: ProcessId,
        /// Observable outputs emitted during the event.
        outputs: Outputs<O>,
    },
    /// No output surfaced for a full `pump_timeout` window: the threaded
    /// pump blocks directly on the shared output channel, so `Idle` means
    /// provably no process emitted an output during the window (though
    /// workers may still be computing or waiting on timers). Never
    /// returned by the simulator.
    Idle,
    /// No event will ever surface again (simulator queue drained, or the
    /// threaded cluster stopped).
    Quiescent,
}

/// A runtime hosting sans-IO automata behind a driver-facing surface.
///
/// The surface is the intersection both runtimes support faithfully;
/// schedule steering (pause/partition) and typed state access remain
/// simulator-only inherent methods, since threads cannot replay schedules
/// or share automaton state.
pub trait Substrate<M, O> {
    /// Which backend this is (for reporting).
    fn backend(&self) -> Backend;

    /// Number of hosted processes.
    fn process_count(&self) -> usize;

    /// Current time: virtual (simulator) or elapsed ticks (threads).
    fn now(&self) -> u64;

    /// Deliver `msg` to `pid` as a command from the environment.
    fn inject(&mut self, pid: ProcessId, msg: M);

    /// Advance: process/collect one event.
    fn pump(&mut self) -> Pumped<O>;

    /// Snapshot of the network counters.
    fn metrics_snapshot(&self) -> NetMetrics;

    /// Snapshot of the debug trace (empty unless enabled).
    fn trace_snapshot(&self) -> Trace;

    /// Execute a transient-fault plan: scramble the listed process states
    /// and inject `gen`-produced garbage messages on the listed channels.
    fn apply_fault(&mut self, plan: &FaultPlan, gen: &mut dyn FnMut(&mut StdRng) -> M);

    /// Crash `pid`: it silently drops all future deliveries.
    fn crash(&mut self, pid: ProcessId);

    /// Restart `pid` with a fresh automaton — crash *recovery* with state
    /// loss. The replacement runs its `on_start`, timers armed by the old
    /// incarnation never fire, and the pid resumes receiving deliveries.
    /// Sound under the paper's transient-fault model: a restarted process
    /// is one whose memory was corrupted to an initial state.
    fn restart(&mut self, pid: ProcessId, auto: Box<dyn Automaton<M, O>>);

    /// Restart `pid` with a *specific* automaton carrying recovered state —
    /// e.g. one rebuilt from the process's own (possibly damaged) stable
    /// storage. Mechanically identical to [`Substrate::restart`] (same
    /// incarnation bump, timer invalidation, and `on_start`), but the
    /// intent differs: `restart` models reboot-from-zero, `restart_with`
    /// models reboot-from-disk. Provided so callers and both backends share
    /// one spelling for the recovery path.
    fn restart_with(&mut self, pid: ProcessId, recovered: Box<dyn Automaton<M, O>>) {
        self.restart(pid, recovered);
    }

    /// Install (`Some`) or clear (`None`) a [`LinkFault`] on the directed
    /// channel `(from, to)`: per-message drop/duplication probabilities and
    /// an extra delay. FIFO order among surviving messages is preserved on
    /// both backends.
    fn set_link_fault(&mut self, from: ProcessId, to: ProcessId, fault: Option<LinkFault>);

    /// Tear the substrate down, *discarding* all pending work: undelivered
    /// messages and unfired timers are dropped, never executed. After
    /// `stop`, `pump` returns [`Pumped::Quiescent`].
    fn stop(&mut self);

    /// Pump until `visit` returns `Some`, the substrate goes quiescent,
    /// `max_idle` consecutive idle pumps accrue, or `max_events` events
    /// were processed. `visit` is called once per output in order; outputs
    /// remaining in an event after it returns `Some` are dropped, matching
    /// the await-one-outcome semantics every driver loop wants.
    fn pump_until<R>(
        &mut self,
        max_events: u64,
        max_idle: u32,
        visit: &mut dyn FnMut(u64, ProcessId, O) -> Option<R>,
    ) -> Option<R>
    where
        Self: Sized,
    {
        let mut events = 0u64;
        let mut idle = 0u32;
        while events < max_events {
            match self.pump() {
                Pumped::Quiescent => return None,
                Pumped::Idle => {
                    idle += 1;
                    if idle >= max_idle {
                        return None;
                    }
                }
                Pumped::Event { time, pid, outputs } => {
                    idle = 0;
                    events += 1;
                    for o in outputs {
                        if let Some(r) = visit(time, pid, o) {
                            return Some(r);
                        }
                    }
                }
            }
        }
        None
    }
}

impl<M, O> Simulation<M, O>
where
    M: Clone + Debug + Send + 'static,
    O: Clone + Debug + Send + 'static,
{
    /// Assemble a simulation hosting `procs` (ids assigned in order).
    pub fn from_procs(procs: Vec<Box<dyn Automaton<M, O>>>, config: &SubstrateConfig) -> Self {
        let mut sim = Simulation::new(config.sim_config());
        for p in procs {
            sim.add_process(p);
        }
        sim
    }
}

impl<M, O> Substrate<M, O> for Simulation<M, O>
where
    M: Clone + Debug + Send + 'static,
    O: Clone + Debug + Send + 'static,
{
    fn backend(&self) -> Backend {
        Backend::Sim
    }

    fn process_count(&self) -> usize {
        Simulation::process_count(self)
    }

    fn now(&self) -> u64 {
        Simulation::now(self)
    }

    fn inject(&mut self, pid: ProcessId, msg: M) {
        Simulation::inject(self, pid, msg);
    }

    fn pump(&mut self) -> Pumped<O> {
        match self.step() {
            Some(ev) => {
                Pumped::Event { time: ev.time, pid: ev.pid, outputs: Outputs::from(ev.outputs) }
            }
            None => Pumped::Quiescent,
        }
    }

    fn metrics_snapshot(&self) -> NetMetrics {
        self.metrics().clone()
    }

    fn trace_snapshot(&self) -> Trace {
        self.trace().clone()
    }

    fn apply_fault(&mut self, plan: &FaultPlan, gen: &mut dyn FnMut(&mut StdRng) -> M) {
        Simulation::apply_fault(self, plan, gen);
    }

    fn crash(&mut self, pid: ProcessId) {
        Simulation::crash(self, pid);
    }

    fn restart(&mut self, pid: ProcessId, auto: Box<dyn Automaton<M, O>>) {
        Simulation::restart(self, pid, auto);
    }

    fn set_link_fault(&mut self, from: ProcessId, to: ProcessId, fault: Option<LinkFault>) {
        Simulation::set_link_fault(self, from, to, fault);
    }

    fn stop(&mut self) {
        // Discard, never execute: stopping must not run protocol work.
        self.halt();
    }
}

/// Runtime-selected substrate: the concrete type a driver stores when the
/// backend is chosen by configuration rather than at compile time.
///
/// The variants differ in size (the simulator carries its scheduler and
/// per-link batching state inline), but drivers hold exactly one of these
/// for a whole run, so the extra bytes in the threaded case don't matter.
#[allow(clippy::large_enum_variant)]
pub enum AnySubstrate<M, O> {
    /// Simulator-backed.
    Sim(Simulation<M, O>),
    /// Thread-backed.
    Threaded(ThreadedCluster<M, O>),
}

impl<M, O> AnySubstrate<M, O>
where
    M: Clone + Debug + Send + 'static,
    O: Clone + Debug + Send + 'static,
{
    /// Spawn `procs` on the requested backend.
    pub fn spawn(
        backend: Backend,
        procs: Vec<Box<dyn Automaton<M, O>>>,
        config: &SubstrateConfig,
    ) -> Self {
        match backend {
            Backend::Sim => AnySubstrate::Sim(Simulation::from_procs(procs, config)),
            Backend::Threaded => AnySubstrate::Threaded(ThreadedCluster::spawn_with(procs, config)),
        }
    }
}

macro_rules! delegate {
    ($self:ident, $sub:ident => $e:expr) => {
        match $self {
            AnySubstrate::Sim($sub) => $e,
            AnySubstrate::Threaded($sub) => $e,
        }
    };
}

impl<M, O> Substrate<M, O> for AnySubstrate<M, O>
where
    M: Clone + Debug + Send + 'static,
    O: Clone + Debug + Send + 'static,
{
    fn backend(&self) -> Backend {
        delegate!(self, s => Substrate::<M, O>::backend(s))
    }

    fn process_count(&self) -> usize {
        delegate!(self, s => Substrate::<M, O>::process_count(s))
    }

    fn now(&self) -> u64 {
        delegate!(self, s => Substrate::<M, O>::now(s))
    }

    fn inject(&mut self, pid: ProcessId, msg: M) {
        delegate!(self, s => Substrate::inject(s, pid, msg))
    }

    fn pump(&mut self) -> Pumped<O> {
        delegate!(self, s => Substrate::pump(s))
    }

    fn metrics_snapshot(&self) -> NetMetrics {
        delegate!(self, s => Substrate::<M, O>::metrics_snapshot(s))
    }

    fn trace_snapshot(&self) -> Trace {
        delegate!(self, s => Substrate::<M, O>::trace_snapshot(s))
    }

    fn apply_fault(&mut self, plan: &FaultPlan, gen: &mut dyn FnMut(&mut StdRng) -> M) {
        delegate!(self, s => Substrate::apply_fault(s, plan, gen))
    }

    fn crash(&mut self, pid: ProcessId) {
        delegate!(self, s => Substrate::<M, O>::crash(s, pid))
    }

    fn restart(&mut self, pid: ProcessId, auto: Box<dyn Automaton<M, O>>) {
        delegate!(self, s => Substrate::restart(s, pid, auto))
    }

    fn set_link_fault(&mut self, from: ProcessId, to: ProcessId, fault: Option<LinkFault>) {
        delegate!(self, s => Substrate::<M, O>::set_link_fault(s, from, to, fault))
    }

    fn stop(&mut self) {
        delegate!(self, s => Substrate::<M, O>::stop(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::{Ctx, ENV};

    /// Counts down by ping-ponging between two processes, then outputs.
    struct PingPong;
    impl Automaton<u32, u32> for PingPong {
        fn on_message(&mut self, from: ProcessId, msg: u32, ctx: &mut Ctx<'_, u32, u32>) {
            if msg == 0 {
                ctx.output(0);
            } else if from != ENV {
                ctx.send(from, msg - 1);
            } else {
                ctx.send(1 - ctx.me, msg - 1);
            }
        }
    }

    fn drive<S: Substrate<u32, u32>>(sub: &mut S) -> Vec<(u64, ProcessId, u32)> {
        sub.inject(0, 10);
        sub.pump_until(100_000, 20, &mut |time, pid, o| Some((time, pid, o))).into_iter().collect()
    }

    #[test]
    fn both_backends_complete_the_countdown() {
        for backend in [Backend::Sim, Backend::Threaded] {
            let procs: Vec<Box<dyn Automaton<u32, u32>>> =
                vec![Box::new(PingPong), Box::new(PingPong)];
            let mut sub = AnySubstrate::spawn(backend, procs, &SubstrateConfig::seeded(5));
            let got = drive(&mut sub);
            assert_eq!(got.len(), 1, "{backend:?}");
            assert_eq!(got[0].2, 0, "{backend:?}");
            let m = sub.metrics_snapshot();
            assert!(m.messages_delivered >= 11, "{backend:?}: {m:?}");
            sub.stop();
            assert!(matches!(sub.pump(), Pumped::Quiescent), "{backend:?}");
        }
    }

    #[test]
    fn stop_discards_pending_sends() {
        // Regression: Simulation::stop() used to *execute* every pending
        // event to drain the queue, running arbitrary protocol work and
        // mutating metrics. It must discard instead: nothing pending at
        // stop() is ever delivered. (On threads delivery is concurrent, so
        // only the simulator can assert an exact cutoff.)
        let procs: Vec<Box<dyn Automaton<u32, u32>>> = vec![Box::new(PingPong), Box::new(PingPong)];
        let mut sub: Simulation<u32, u32> =
            Simulation::from_procs(procs, &SubstrateConfig::seeded(2));
        sub.inject(0, 500); // a 500-hop countdown is now pending
        Substrate::pump(&mut sub); // deliver just the kick-off
        let delivered_at_stop = sub.metrics_snapshot().messages_delivered;
        Substrate::stop(&mut sub);
        assert!(matches!(Substrate::pump(&mut sub), Pumped::Quiescent));
        assert_eq!(
            sub.metrics_snapshot().messages_delivered,
            delivered_at_stop,
            "stop() must not deliver pending sends"
        );
        assert!(delivered_at_stop < 500, "countdown must not have run to completion");
    }

    #[test]
    fn restart_recovers_on_both_backends() {
        for backend in [Backend::Sim, Backend::Threaded] {
            let procs: Vec<Box<dyn Automaton<u32, u32>>> =
                vec![Box::new(PingPong), Box::new(PingPong)];
            let mut sub = AnySubstrate::spawn(backend, procs, &SubstrateConfig::seeded(4));
            sub.crash(1);
            sub.inject(0, 6);
            assert!(
                sub.pump_until(10_000, 20, &mut |_, _, o: u32| Some(o)).is_none(),
                "{backend:?}: countdown completed through a crashed peer"
            );
            sub.restart(1, Box::new(PingPong));
            sub.inject(0, 6);
            let got = sub.pump_until(10_000, 200, &mut |_, _, o: u32| Some(o));
            assert_eq!(got, Some(0), "{backend:?}: restarted peer participates");
            sub.stop();
        }
    }

    #[test]
    fn link_faults_cut_and_heal_on_both_backends() {
        for backend in [Backend::Sim, Backend::Threaded] {
            let procs: Vec<Box<dyn Automaton<u32, u32>>> =
                vec![Box::new(PingPong), Box::new(PingPong)];
            let mut sub = AnySubstrate::spawn(backend, procs, &SubstrateConfig::seeded(6));
            sub.set_link_fault(0, 1, Some(LinkFault::cut()));
            sub.inject(0, 4);
            assert!(
                sub.pump_until(10_000, 20, &mut |_, _, o: u32| Some(o)).is_none(),
                "{backend:?}: countdown crossed a cut link"
            );
            sub.set_link_fault(0, 1, None);
            sub.inject(0, 4);
            let got = sub.pump_until(10_000, 200, &mut |_, _, o: u32| Some(o));
            assert_eq!(got, Some(0), "{backend:?}: healed link flows again");
            sub.stop();
        }
    }

    #[test]
    fn sim_substrate_reports_backend_and_counts() {
        let procs: Vec<Box<dyn Automaton<u32, u32>>> = vec![Box::new(PingPong), Box::new(PingPong)];
        let sub: Simulation<u32, u32> = Simulation::from_procs(procs, &SubstrateConfig::seeded(1));
        assert_eq!(Substrate::<u32, u32>::backend(&sub), Backend::Sim);
        assert_eq!(Substrate::<u32, u32>::process_count(&sub), 2);
    }
}
