//! Sharded-store nemesis smoke: a shard is the unit of fault isolation.
//! Crashing or partitioning one shard's server group below quorum wedges
//! that shard only — every other shard keeps serving operations whose
//! histories remain regular.

use sbft::kv::{KvCluster, KvMsg};
use sbft::register::messages::Msg;

#[test]
fn crashing_one_shard_leaves_the_others_serving() {
    let mut store = KvCluster::bounded(1).shards(4).clients(2).seed(51).build();
    let (a, b) = (store.client(0), store.client(1));
    // Seed every key once so all shards hold state.
    for key in 0..8u64 {
        store.put(a, key, 100 + key).unwrap();
    }
    // Crash two servers of one shard: 4 of n = 6 alive is below the
    // n - f = 5 quorum, so that shard can no longer complete operations.
    let doomed_key = 3u64;
    let victim = store.router.shard_of(doomed_key);
    for pid in store.router.server_pids(victim).take(2) {
        store.sim.crash(pid);
    }
    // Fire an op at the wedged shard from client b, bypassing the blocking
    // helpers (it can never complete — b's pipeline slot is sacrificed).
    store.sim.inject(b, KvMsg::new(doomed_key, Msg::InvokeWrite { value: 999 }));
    // Every key on a surviving shard still round-trips through client a.
    let mut survivors = 0;
    for key in 0..8u64 {
        if store.router.shard_of(key) == victim {
            continue;
        }
        survivors += 1;
        store.put(a, key, 200 + key).unwrap();
        assert_eq!(store.get(a, key).unwrap(), 200 + key);
    }
    assert!(survivors > 0, "need at least one key off the victim shard");
    assert!(store.check_all_histories().is_ok());
    let verdicts = store.check_per_shard();
    assert!(verdicts.values().all(|v| v.is_regular()), "{verdicts:?}");
}

#[test]
fn partitioning_one_shard_from_a_client_leaves_other_shards_reachable() {
    use sbft::net::LinkFault;
    let mut store = KvCluster::bounded(1).shards(2).seed(52).build();
    let c = store.client(0);
    for key in 0..6u64 {
        store.put(c, key, 10 + key).unwrap();
    }
    // Cut the client off from every server of one shard, both directions.
    let victim = store.router.shard_of(0);
    for pid in store.router.server_pids(victim) {
        store.sim.set_link_fault(c, pid, Some(LinkFault::cut()));
        store.sim.set_link_fault(pid, c, Some(LinkFault::cut()));
    }
    // Keys placed on the other shard are untouched by the partition.
    let mut reachable = 0;
    for key in 0..6u64 {
        if store.router.shard_of(key) == victim {
            continue;
        }
        reachable += 1;
        assert_eq!(store.get(c, key).unwrap(), 10 + key);
        store.put(c, key, 20 + key).unwrap();
        assert_eq!(store.get(c, key).unwrap(), 20 + key);
    }
    assert!(reachable > 0, "need at least one key off the victim shard");
    assert!(store.check_all_histories().is_ok());
    let verdicts = store.check_per_shard();
    assert!(verdicts.values().all(|v| v.is_regular()), "{verdicts:?}");
}
