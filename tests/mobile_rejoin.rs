//! Cured-server rejoin under the mobile-Byzantine adversary, on both
//! substrates: when the roaming seat vacates a server, the server comes
//! back **amnesiac** (state re-corrupted, not a clean restart) and must
//! reconverge; its post-cure window is excluded from regularity scrutiny
//! until the first completed stabilizing write (paper assumption A1).

use sbft::net::nemesis::{CureMode, NemesisEvent, NemesisSchedule};
use sbft::net::{Backend, CorruptionSeverity};
use sbft::register::adversary::ByzStrategy;
use sbft::register::cluster::RegisterCluster;
use sbft::register::{RetryPolicy, WindowTracker};

const MAX_ROUNDS: u64 = 400;

/// One seat movement at `t = 2000` (5 → 2), amnesiac cure, then a
/// write/read workload to the end. Returns (cluster history verdicts):
/// windows recorded by the cure-aware tracker, the time of the cure, and
/// the time of the first completed post-cure all-clear write.
fn run_rejoin(backend: Backend, seed: u64) {
    let byz_seat = 5usize;
    let mut c = RegisterCluster::bounded(1)
        .clients(2)
        .byzantine(byz_seat, ByzStrategy::Equivocate)
        .seed(seed)
        .backend(backend)
        .retry(RetryPolicy::chaos())
        .build_any();
    let total_procs = c.cfg.n + 2;
    let schedule =
        NemesisSchedule::scripted(vec![(2_000, NemesisEvent::MoveByz { from: byz_seat, to: 2 })]);
    let mut runner = c
        .nemesis_runner(schedule, vec![byz_seat], ByzStrategy::Equivocate)
        .cure_mode(CureMode::Amnesiac { total_procs, severity: CorruptionSeverity::Heavy });

    let (w, r) = (c.client(0), c.client(1));
    let mut tracker = WindowTracker::new();
    let mut value = 1u64;

    let first = c.write_outcome(w, value);
    assert!(first.is_ok(), "pre-movement write must complete: {first:?}");
    tracker.write_completed(c.now(), true);
    assert!(tracker.is_open());

    let mut cure_seen = false;
    let mut converged_after_cure = false;
    let mut rounds = 0u64;
    while rounds < MAX_ROUNDS && (!runner.done() || !converged_after_cure) {
        rounds += 1;
        let before = c.now();
        runner.fire_due(&mut c.sim);
        if !cure_seen && !runner.cures.is_empty() {
            let (at, pid) = runner.cures[0];
            assert_eq!(pid, byz_seat, "the vacated server is the cured one");
            tracker.cured(pid, at.max(c.now()));
            cure_seen = true;
            // A1 exclusion: the seat moved and the nemesis already
            // reports all-clear (movement is instantaneous), but the
            // cured server is unconverged — no stable window may be open
            // until a converging write completes.
            assert!(runner.all_clear());
            assert!(!tracker.is_open(), "cure must close the stable window");
            assert!(tracker.unconverged().contains(&byz_seat));
        }

        value += 1;
        let wout = c.write_outcome(w, value);
        if wout.is_ok() {
            tracker.write_completed(c.now(), runner.all_clear());
            if cure_seen && !converged_after_cure && tracker.unconverged().is_empty() {
                converged_after_cure = true;
                assert!(tracker.is_open(), "converging write reopens the window");
            }
        }
        let _ = c.read_outcome(r);

        // Fast-forward valve: the sim needs it when the schedule's clock
        // outruns quiesced virtual time; the threaded backend needs the
        // round bound instead — its wall clock always advances but may
        // never reach the scripted time within the round budget.
        if !runner.done() && (c.now() == before || rounds >= 50) {
            runner.fire_next(&mut c.sim);
        }
    }
    assert!(cure_seen, "the scripted movement never fired");
    assert!(converged_after_cure, "no post-cure write completed in {MAX_ROUNDS} rounds");

    // The cured server functionally reconverged: the register still
    // serves fresh values through the new seat configuration.
    value += 1;
    assert!(c.write_outcome(w, value).is_ok(), "post-cure write");
    let got = c.read_outcome(r);
    let read = got.ok().expect("post-cure read completes");
    assert_eq!(read.value, value, "post-cure read returns the converged value");

    // Seat bookkeeping: the adversary now sits on server 2 only.
    assert_eq!(runner.byz_seats().iter().copied().collect::<Vec<_>>(), vec![2]);

    // Every cure-aware stable window is regular; the cure-to-convergence
    // gap is outside all of them by construction.
    c.settle(200_000);
    let windows = tracker.finish(u64::MAX);
    assert!(windows.len() >= 2, "expected windows on both sides of the cure: {windows:?}");
    for (start, end) in windows {
        assert!(
            c.recorder.check_window(&c.sys, start, end).is_ok(),
            "stable window [{start}, {end}] must be regular"
        );
    }
    c.stop();
}

#[test]
fn amnesiac_rejoin_reconverges_on_sim() {
    run_rejoin(Backend::Sim, 9);
}

#[test]
fn amnesiac_rejoin_reconverges_on_threads() {
    run_rejoin(Backend::Threaded, 9);
}

/// Sim-only introspection: after the movement the vacated pid runs an
/// *honest* server automaton again (the adversary really left), and the
/// destination no longer does.
#[test]
fn vacated_seat_restarts_honest() {
    let byz_seat = 5usize;
    let mut c = RegisterCluster::bounded(1)
        .clients(2)
        .byzantine(byz_seat, ByzStrategy::StaleReplay)
        .seed(3)
        .retry(RetryPolicy::chaos())
        .build();
    let total_procs = c.cfg.n + 2;
    let schedule =
        NemesisSchedule::scripted(vec![(1_000, NemesisEvent::MoveByz { from: byz_seat, to: 0 })]);
    let mut runner = c
        .nemesis_runner(schedule, vec![byz_seat], ByzStrategy::StaleReplay)
        .cure_mode(CureMode::Amnesiac { total_procs, severity: CorruptionSeverity::Light });

    let w = c.client(0);
    assert!(c.server_state(byz_seat).is_none(), "seat starts Byzantine");
    assert!(c.server_state(0).is_some(), "destination starts honest");

    let mut value = 0u64;
    while !runner.done() {
        value += 1;
        let _ = c.write_outcome(w, value);
        runner.fire_due(&mut c.sim);
    }
    assert!(c.server_state(byz_seat).is_some(), "vacated seat must rejoin honest");
    assert!(c.server_state(0).is_none(), "destination must now be the adversary");
    assert_eq!(runner.cures.len(), 1);

    // And the wiped server still lets the cluster make progress.
    value += 1;
    assert!(c.write_outcome(w, value).is_ok());
    c.stop();
}
