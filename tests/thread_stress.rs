//! Elevated-iteration stress for the event-driven threaded runtime.
//!
//! These tests hammer the wakeup paths the quick suites only touch:
//! sustained register traffic, FIFO under cross-sender pressure, link-fault
//! churn racing live traffic, crash/restart churn, and a timer storm
//! through the shared wheel. They are `#[ignore]`d by default because they
//! take tens of seconds; the CI thread-stress job runs them with
//! `cargo test --release --test thread_stress -- --ignored`, where races
//! in the wakeup machinery surface as hangs (every wait here is bounded)
//! or as broken invariants.

use std::collections::BTreeMap;
use std::time::Duration;

use sbft::labels::BoundedLabeling;
use sbft::net::{
    Automaton, Ctx, LinkFault, ProcessId, Substrate, SubstrateConfig, ThreadedCluster, ENV,
};
use sbft::register::cluster::RegisterCluster;
use sbft::register::messages::ClientEvent;
use sbft::register::server::Server;
use sbft::register::RetryPolicy;

type B = BoundedLabeling;

/// Sustained closed-loop register traffic: several clients, hundreds of
/// operations each, every one must terminate and the history must stay
/// regular.
#[test]
#[ignore = "elevated iterations; run via the CI thread-stress job"]
fn stress_register_sustained_ops() {
    let mut c = RegisterCluster::bounded(1).clients(3).seed(101).build_threaded();
    let clients: Vec<ProcessId> = (0..3).map(|i| c.client(i)).collect();
    for round in 0..300u64 {
        for (i, &pid) in clients.iter().enumerate() {
            let v = round * 10 + i as u64 + 1;
            if (round + i as u64).is_multiple_of(3) {
                let got = c.read(pid).expect("read terminates under sustained load");
                assert!(got.value <= 3000, "implausible value {}", got.value);
            } else {
                c.write(pid, v).expect("write terminates under sustained load");
            }
        }
    }
    assert!(c.check_history().is_ok(), "sustained load broke regularity");
    c.stop();
}

/// Collects `(sender, seq)` for every delivered message.
struct Sink;

impl Automaton<u64, (ProcessId, u64)> for Sink {
    fn on_message(&mut self, from: ProcessId, msg: u64, ctx: &mut Ctx<'_, u64, (ProcessId, u64)>) {
        if from != ENV {
            ctx.output((from, msg));
        }
    }
}

/// On an ENV kick carrying `n`, fires a burst of `n` sequenced messages at
/// the sink.
struct Source;

impl Automaton<u64, (ProcessId, u64)> for Source {
    fn on_message(&mut self, from: ProcessId, msg: u64, ctx: &mut Ctx<'_, u64, (ProcessId, u64)>) {
        if from == ENV {
            for seq in 0..msg {
                ctx.send(0, seq);
            }
        }
    }
}

/// Per-sender FIFO at volume: 6 senders × 2000 messages each into one
/// sink, nothing lost, nothing reordered within a sender.
#[test]
#[ignore = "elevated iterations; run via the CI thread-stress job"]
fn stress_fifo_many_senders_large_bursts() {
    const SENDERS: usize = 6;
    const BURST: u64 = 2000;
    let mut procs: Vec<Box<dyn Automaton<u64, (ProcessId, u64)>>> = vec![Box::new(Sink)];
    for _ in 0..SENDERS {
        procs.push(Box::new(Source));
    }
    let mut sub = ThreadedCluster::spawn_with(procs, &SubstrateConfig::seeded(7));
    for i in 0..SENDERS {
        sub.inject(i + 1, BURST);
    }
    let expected = SENDERS as u64 * BURST;
    let mut seen: BTreeMap<ProcessId, Vec<u64>> = BTreeMap::new();
    let mut got = 0u64;
    sub.pump_until(u64::MAX, 200, &mut |_t, _pid, (from, seq)| {
        seen.entry(from).or_default().push(seq);
        got += 1;
        (got >= expected).then_some(())
    });
    assert_eq!(got, expected, "messages lost under load");
    for (sender, order) in seen {
        assert_eq!(order, (0..BURST).collect::<Vec<u64>>(), "sender {sender} reordered");
    }
    sub.stop();
}

/// Link-fault churn racing live traffic: repeatedly install and clear
/// delay/dup/drop faults while volleys are in flight. Terminates (no
/// wedged deferred state) and conserves accounting: every send is
/// eventually delivered (possibly twice) or counted dropped.
#[test]
#[ignore = "elevated iterations; run via the CI thread-stress job"]
fn stress_link_fault_churn_conserves_messages() {
    let procs: Vec<Box<dyn Automaton<u64, (ProcessId, u64)>>> =
        vec![Box::new(Sink), Box::new(Source)];
    let mut sub = ThreadedCluster::spawn_with(
        procs,
        &SubstrateConfig::seeded(23).with_tick(Duration::from_micros(50)),
    );
    let faults = [
        Some(LinkFault::flaky(0.0, 0.0, 5)),
        Some(LinkFault::flaky(0.0, 1.0, 0)),
        None,
        Some(LinkFault::flaky(0.0, 0.5, 3)),
        None,
    ];
    for round in 0..200usize {
        sub.set_link_fault_on(1, 0, faults[round % faults.len()]);
        sub.inject(1, 10);
    }
    sub.set_link_fault_on(1, 0, None);
    // Drain until deliveries stop arriving (bounded by pump timeouts).
    let mut sink = 0u64;
    sub.pump_until(u64::MAX, 10, &mut |_t, _p, _o: (ProcessId, u64)| {
        sink += 1;
        None::<()>
    });
    let m = sub.metrics_snapshot();
    // ENV kicks (200) + volleys (2000) were all sent; every volley message
    // was delivered at least once (no drop fault installed above drops
    // nothing — only delay/dup), and duplicates only add deliveries.
    assert_eq!(m.messages_sent, 2200, "{m:?}");
    assert_eq!(m.messages_dropped, 0, "{m:?}");
    assert!(m.messages_delivered >= 2200, "{m:?}");
    assert!(sink >= 2000, "sink saw {sink} of 2000 volley messages");
    sub.stop();
}

/// Crash/restart churn under retrying load: the client must keep
/// terminating operations while servers flap.
#[test]
#[ignore = "elevated iterations; run via the CI thread-stress job"]
fn stress_crash_restart_churn_keeps_terminating() {
    let mut c = RegisterCluster::bounded(1)
        .clients(1)
        .seed(31)
        .retry(RetryPolicy::chaos())
        .build_threaded();
    let w = c.client(0);
    let n = c.cfg.n;
    let cfg = c.cfg;
    let sys = c.sys.clone();
    let mut completed = 0u64;
    for round in 0..60u64 {
        let victim = (round as usize) % n;
        c.sim.crash(victim);
        c.invoke_write(w, round + 1);
        if let Ok(ev) = c.await_client(w) {
            if matches!(ev, ClientEvent::WriteDone { .. }) {
                completed += 1;
            }
        }
        c.sim.restart(victim, Box::new(Server::<B>::new(sys.clone(), cfg)));
    }
    assert!(completed >= 30, "only {completed}/60 writes completed under churn");
    assert!(c.check_history().is_ok(), "crash churn broke regularity");
    c.stop();
}

/// Arms `self.0` timers of jittered delays on start, outputs each firing.
struct TimerStorm(u64);

impl Automaton<u64, u64> for TimerStorm {
    fn on_start(&mut self, ctx: &mut Ctx<'_, u64, u64>) {
        for id in 0..self.0 {
            ctx.set_timer(1 + (id % 97), id);
        }
    }
    fn on_timer(&mut self, id: u64, ctx: &mut Ctx<'_, u64, u64>) {
        ctx.output(id);
    }
    fn on_message(&mut self, _: ProcessId, _: u64, _: &mut Ctx<'_, u64, u64>) {}
}

/// Timer storm through the shared wheel: thousands of timers from several
/// processes at once; every one fires exactly once.
#[test]
#[ignore = "elevated iterations; run via the CI thread-stress job"]
fn stress_timer_storm_fires_every_timer_once() {
    const PROCS: usize = 4;
    const TIMERS: u64 = 2500;
    let procs: Vec<Box<dyn Automaton<u64, u64>>> =
        (0..PROCS).map(|_| Box::new(TimerStorm(TIMERS)) as Box<dyn Automaton<u64, u64>>).collect();
    let mut sub = ThreadedCluster::spawn_with(
        procs,
        &SubstrateConfig::seeded(41).with_tick(Duration::from_micros(50)),
    );
    let mut fired: BTreeMap<ProcessId, Vec<u64>> = BTreeMap::new();
    let mut got = 0u64;
    sub.pump_until(u64::MAX, 300, &mut |_t, pid, id| {
        fired.entry(pid).or_default().push(id);
        got += 1;
        (got >= PROCS as u64 * TIMERS).then_some(())
    });
    assert_eq!(got, PROCS as u64 * TIMERS, "timer firings lost");
    for (pid, mut ids) in fired {
        ids.sort_unstable();
        assert_eq!(ids, (0..TIMERS).collect::<Vec<u64>>(), "pid {pid}: duplicate/missing firing");
    }
    sub.stop();
}
