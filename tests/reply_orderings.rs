//! Exhaustive schedule sweep over one dimension: the order in which
//! server replies reach a reader. For a worst-case split register state
//! (half the servers at the old value, half at the new — a crashed
//! writer's residue), *every one of the 720 arrival permutations* must
//! produce a read that terminates and returns one of the two legitimate
//! values. This is a small exhaustive model check of the WTsG decision
//! logic, complementing the randomized schedule suite.

use sbft::register::cluster::RegisterCluster;

/// All permutations of `items` (Heap's algorithm, collected).
fn permutations(items: &[usize]) -> Vec<Vec<usize>> {
    fn heap(k: usize, arr: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if k == 1 {
            out.push(arr.clone());
            return;
        }
        for i in 0..k {
            heap(k - 1, arr, out);
            if k.is_multiple_of(2) {
                arr.swap(i, k - 1);
            } else {
                arr.swap(0, k - 1);
            }
        }
    }
    let mut arr = items.to_vec();
    let mut out = Vec::new();
    heap(arr.len(), &mut arr, &mut out);
    out
}

fn run_with_order(order: &[usize]) -> u64 {
    let mut c = RegisterCluster::bounded(1).clients(3).seed(5).build();
    let w = c.client(0);
    let w2 = c.client(1);
    let r = c.client(2);

    // Install v1 everywhere, then a crashed writer leaves v2 on 3 servers.
    c.write(w, 1).unwrap();
    let ts1 = c.write(w, 1).unwrap();
    c.invoke_write(w2, 2);
    c.sim.crash(w2);
    c.settle(50_000);
    let ts2 = c.sys.next_for(w2 as u32, std::slice::from_ref(&ts1));
    for s in 0..3 {
        if let Some(srv) = c.server_state(s) {
            let prev = (srv.value, srv.ts.clone());
            srv.old_vals.push_front(prev);
            srv.value = 2;
            srv.ts = ts2.clone();
        }
    }

    // Force the reply arrival order: pause every server→reader channel,
    // start the read, then release the channels one by one in `order`.
    for s in 0..6 {
        c.sim.pause_channel(s, r);
    }
    c.invoke_read(r);
    // Let the FLUSHes reach the servers (their acks are buffered).
    c.settle(50_000);
    let mut result = None;
    for &s in order {
        c.sim.resume_channel(s, r);
        // Drain deliverable events; the read may decide mid-order.
        let mut budget = 50_000u64;
        while budget > 0 {
            let Some(ev) = c.sim.step() else { break };
            budget -= 1;
            let (time, pid) = (ev.time, ev.pid);
            for out in ev.outputs {
                c.recorder.complete(pid, time, &out);
                if pid == r {
                    if let sbft::register::messages::ClientEvent::ReadDone { value, .. } = out {
                        result = Some(value);
                    } else {
                        result = Some(u64::MAX); // abort marker
                    }
                }
            }
        }
        if result.is_some() {
            break;
        }
    }
    result.expect("the read must decide once enough replies arrived")
}

#[test]
fn every_reply_ordering_returns_a_legitimate_value() {
    let orders = permutations(&[0, 1, 2, 3, 4, 5]);
    assert_eq!(orders.len(), 720);
    let mut saw_old = false;
    let mut saw_new = false;
    for (i, order) in orders.iter().enumerate() {
        let v = run_with_order(order);
        assert!(v == 1 || v == 2, "order #{i} {order:?} returned illegitimate {v}");
        saw_old |= v == 1;
        saw_new |= v == 2;
    }
    // The sweep must actually exercise both outcomes (otherwise the split
    // scenario collapsed and the test is vacuous).
    assert!(saw_old && saw_new, "sweep must reach both legitimate values");
}
