//! Integration test for the Theorem 1 lower bound (experiment E1): the
//! scripted adversarial execution violates regularity for every choice of
//! slow server at `n = 5f`, and never at `n = 5f + 1`.

use sbft_bench::e1_lower_bound::scripted_run;

#[test]
fn theorem1_execution_violates_at_5f() {
    for slow in 0..3 {
        for seed in [7u64, 11, 13] {
            let run = scripted_run(5, slow, seed);
            assert!(
                run.violated,
                "slow={slow} seed={seed}: the proof schedule must violate at n = 5f"
            );
            assert_eq!(run.read_value, Some(999), "the corrupted value leaks");
        }
    }
}

#[test]
fn extra_server_neutralizes_the_adversary() {
    for slow in 0..4 {
        for seed in [7u64, 11, 13] {
            let run = scripted_run(6, slow, seed);
            assert!(
                !run.violated,
                "slow={slow} seed={seed}: n = 5f + 1 must absorb the Theorem 1 adversary"
            );
            assert_eq!(run.read_value, Some(2), "the last written value is returned");
        }
    }
}
