//! Randomized schedule exploration ("model checking lite"): many seeds ×
//! random workload interleavings × random fault patterns, all checked
//! against the MWMR regularity specification. Complements the targeted
//! unit tests with breadth.

use proptest::prelude::*;
use sbft::net::CorruptionSeverity;
use sbft::register::adversary::ByzStrategy;
use sbft::register::cluster::{Op, OpError, RegisterCluster};

/// A randomized concurrent workload step.
#[derive(Clone, Debug)]
enum Step {
    Write(u8, u64),
    Read(u8),
    Concurrent(Vec<(u8, bool)>),
    Corrupt,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u8..3, 1u64..1000).prop_map(|(c, v)| Step::Write(c, v)),
        (0u8..3).prop_map(Step::Read),
        proptest::collection::vec((0u8..3, any::<bool>()), 2..4).prop_map(Step::Concurrent),
        Just(Step::Corrupt),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]

    /// Any interleaving of sequential ops, concurrent batches, and
    /// transient faults keeps the post-write suffixes regular and all
    /// operations terminating.
    #[test]
    fn random_workloads_stay_regular(
        seed in 0u64..1000,
        byz in proptest::option::of(proptest::sample::select(ByzStrategy::all().to_vec())),
        steps in proptest::collection::vec(step_strategy(), 1..8),
    ) {
        let mut b = RegisterCluster::bounded(1).clients(3).seed(seed);
        if let Some(s) = byz {
            b = b.byzantine_tail(s);
        }
        let mut c = b.build();
        let mut stable_from = 0u64;
        let mut next_val = 10_000u64;
        for step in steps {
            match step {
                Step::Write(ci, v) => {
                    let pid = c.client(ci as usize);
                    prop_assert!(c.write(pid, v).is_ok(), "write must terminate");
                }
                Step::Read(ci) => {
                    let pid = c.client(ci as usize);
                    match c.read(pid) {
                        Ok(_) | Err(OpError::Aborted) => {}
                        Err(OpError::Stuck) => prop_assert!(false, "read stuck"),
                    }
                }
                Step::Concurrent(ops) => {
                    // One op per distinct client.
                    let mut seen = [false; 3];
                    let batch: Vec<(usize, Op)> = ops
                        .into_iter()
                        .filter(|(ci, _)| !std::mem::replace(&mut seen[*ci as usize % 3], true))
                        .map(|(ci, is_write)| {
                            next_val += 1;
                            (ci as usize % 3, if is_write { Op::Write(next_val) } else { Op::Read })
                        })
                        .collect();
                    let evs = c.run_concurrent(&batch);
                    prop_assert!(evs.iter().all(|e| e.is_some()), "concurrent ops must terminate");
                }
                Step::Corrupt => {
                    c.corrupt_everything(CorruptionSeverity::Heavy);
                    // Assumption 1: complete a write to re-stabilize.
                    next_val += 1;
                    let pid = c.client(0);
                    prop_assert!(c.write(pid, next_val).is_ok(), "post-fault write must complete");
                    stable_from = c.now();
                }
            }
        }
        c.settle(300_000);
        prop_assert!(
            c.check_history_from(stable_from).is_ok(),
            "suffix from t={} must be regular",
            stable_from
        );
    }
}
