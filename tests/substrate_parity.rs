//! Substrate parity: the same sans-IO automata behave correctly on both
//! the deterministic simulator and the threaded (crossbeam) runtime, and
//! the data-link substrate provides the FIFO property the register
//! assumes.

use std::time::Duration;

use sbft::datalink::DatalinkSim;
use sbft::labels::{BoundedLabeling, MwmrLabeling};
use sbft::net::{Automaton, ThreadedCluster};
use sbft::register::client::Client;
use sbft::register::cluster::RegisterCluster;
use sbft::register::config::ClusterConfig;
use sbft::register::messages::{ClientEvent, Msg};
use sbft::register::reader::ReaderOptions;
use sbft::register::server::Server;
use sbft::register::Ts;

type B = BoundedLabeling;
type M = Msg<Ts<B>>;
type E = ClientEvent<Ts<B>>;

fn spawn_threaded(f: usize, clients: usize, seed: u64) -> (ClusterConfig, ThreadedCluster<M, E>) {
    let cfg = ClusterConfig::stabilizing(f);
    let sys = MwmrLabeling::new(BoundedLabeling::new(cfg.label_k()));
    let mut procs: Vec<Box<dyn Automaton<M, E>>> = Vec::new();
    for _ in 0..cfg.n {
        procs.push(Box::new(Server::<B>::new(sys.clone(), cfg)));
    }
    for i in 0..clients {
        let pid = cfg.client_pid(i);
        procs.push(Box::new(Client::<B>::new(sys.clone(), cfg, pid as u32, ReaderOptions::default())));
    }
    (cfg, ThreadedCluster::spawn(procs, seed))
}

#[test]
fn threaded_write_read_roundtrip() {
    let (cfg, cluster) = spawn_threaded(1, 2, 1);
    let w = cfg.client_pid(0);
    let r = cfg.client_pid(1);
    let ev = cluster
        .invoke_and_wait(w, Msg::InvokeWrite { value: 55 }, Duration::from_secs(30))
        .expect("write terminates on threads");
    assert!(matches!(ev, ClientEvent::WriteDone { value: 55, .. }));
    let ev = cluster
        .invoke_and_wait(r, Msg::InvokeRead, Duration::from_secs(30))
        .expect("read terminates on threads");
    match ev {
        ClientEvent::ReadDone { value, .. } => assert_eq!(value, 55),
        other => panic!("unexpected {other:?}"),
    }
    cluster.shutdown();
}

#[test]
fn threaded_sequential_reads_do_not_regress() {
    let (cfg, cluster) = spawn_threaded(1, 2, 2);
    let w = cfg.client_pid(0);
    let r = cfg.client_pid(1);
    let mut last = 0u64;
    for v in 1..=20u64 {
        cluster
            .invoke_and_wait(w, Msg::InvokeWrite { value: v }, Duration::from_secs(30))
            .expect("write");
        let ev = cluster
            .invoke_and_wait(r, Msg::InvokeRead, Duration::from_secs(30))
            .expect("read");
        if let ClientEvent::ReadDone { value, .. } = ev {
            assert!(value >= last, "reads regressed: {value} after {last}");
            last = value;
        }
    }
    cluster.shutdown();
}

#[test]
fn simulator_and_threads_agree_on_final_value() {
    // Same workload on both substrates: last write wins on both.
    let mut sim = RegisterCluster::bounded(1).clients(2).seed(3).build();
    let (w, r) = (sim.client(0), sim.client(1));
    for v in 1..=7 {
        sim.write(w, v).unwrap();
    }
    let sim_final = sim.read(r).unwrap().value;

    let (cfg, cluster) = spawn_threaded(1, 2, 3);
    for v in 1..=7u64 {
        cluster
            .invoke_and_wait(cfg.client_pid(0), Msg::InvokeWrite { value: v }, Duration::from_secs(30))
            .expect("write");
    }
    let ev = cluster
        .invoke_and_wait(cfg.client_pid(1), Msg::InvokeRead, Duration::from_secs(30))
        .expect("read");
    let thr_final = match ev {
        ClientEvent::ReadDone { value, .. } => value,
        other => panic!("unexpected {other:?}"),
    };
    cluster.shutdown();

    assert_eq!(sim_final, 7);
    assert_eq!(thr_final, 7);
}

#[test]
fn datalink_provides_fifo_for_the_register_assumption() {
    // The register assumes reliable FIFO channels; the data-link builds
    // them from lossy non-FIFO ones. End to end: a corrupted link still
    // delivers the stream's clean FIFO suffix.
    let payloads: Vec<u64> = (500..560).collect();
    let rep = DatalinkSim::converge_report(4, 11, &payloads, 50_000_000);
    assert!(rep.fifo_suffix_ok, "{rep:?}");
}
