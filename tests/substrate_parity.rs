//! Substrate parity: the same sans-IO automata behave correctly on both
//! the deterministic simulator and the threaded (crossbeam) runtime, and
//! the data-link substrate provides the FIFO property the register
//! assumes.

use std::collections::BTreeMap;
use std::time::Duration;

use proptest::collection;
use proptest::prelude::*;
use rand::rngs::StdRng;
use sbft::datalink::DatalinkSim;
use sbft::labels::{BoundedLabeling, MwmrLabeling};
use sbft::net::{
    AnySubstrate, Automaton, AutomatonFactory, Backend, Ctx, LinkFault, NemesisOpts, NemesisRunner,
    NemesisSchedule, ProcessId, Substrate, SubstrateConfig, ThreadedCluster, ENV,
};
use sbft::register::adversary::random_message;
use sbft::register::client::Client;
use sbft::register::cluster::{Op, RegisterCluster};
use sbft::register::config::ClusterConfig;
use sbft::register::messages::{ClientEvent, Msg};
use sbft::register::reader::ReaderOptions;
use sbft::register::server::Server;
use sbft::register::{RetryPolicy, Ts};

type B = BoundedLabeling;
type M = Msg<Ts<B>>;
type E = ClientEvent<Ts<B>>;

fn spawn_threaded(f: usize, clients: usize, seed: u64) -> (ClusterConfig, ThreadedCluster<M, E>) {
    let cfg = ClusterConfig::stabilizing(f);
    let sys = MwmrLabeling::new(BoundedLabeling::new(cfg.label_k()));
    let mut procs: Vec<Box<dyn Automaton<M, E>>> = Vec::new();
    for _ in 0..cfg.n {
        procs.push(Box::new(Server::<B>::new(sys.clone(), cfg)));
    }
    for i in 0..clients {
        let pid = cfg.client_pid(i);
        procs.push(Box::new(Client::<B>::new(
            sys.clone(),
            cfg,
            pid as u32,
            ReaderOptions::default(),
        )));
    }
    (cfg, ThreadedCluster::spawn(procs, seed))
}

#[test]
fn threaded_write_read_roundtrip() {
    let (cfg, cluster) = spawn_threaded(1, 2, 1);
    let w = cfg.client_pid(0);
    let r = cfg.client_pid(1);
    let ev = cluster
        .invoke_and_wait(w, Msg::InvokeWrite { value: 55 }, Duration::from_secs(30))
        .expect("write terminates on threads");
    assert!(matches!(ev, ClientEvent::WriteDone { value: 55, .. }));
    let ev = cluster
        .invoke_and_wait(r, Msg::InvokeRead, Duration::from_secs(30))
        .expect("read terminates on threads");
    match ev {
        ClientEvent::ReadDone { value, .. } => assert_eq!(value, 55),
        other => panic!("unexpected {other:?}"),
    }
    cluster.shutdown();
}

#[test]
fn threaded_sequential_reads_do_not_regress() {
    let (cfg, cluster) = spawn_threaded(1, 2, 2);
    let w = cfg.client_pid(0);
    let r = cfg.client_pid(1);
    let mut last = 0u64;
    for v in 1..=20u64 {
        cluster
            .invoke_and_wait(w, Msg::InvokeWrite { value: v }, Duration::from_secs(30))
            .expect("write");
        let ev =
            cluster.invoke_and_wait(r, Msg::InvokeRead, Duration::from_secs(30)).expect("read");
        if let ClientEvent::ReadDone { value, .. } = ev {
            assert!(value >= last, "reads regressed: {value} after {last}");
            last = value;
        }
    }
    cluster.shutdown();
}

#[test]
fn simulator_and_threads_agree_on_final_value() {
    // Same workload on both substrates: last write wins on both.
    let mut sim = RegisterCluster::bounded(1).clients(2).seed(3).build();
    let (w, r) = (sim.client(0), sim.client(1));
    for v in 1..=7 {
        sim.write(w, v).unwrap();
    }
    let sim_final = sim.read(r).unwrap().value;

    let (cfg, cluster) = spawn_threaded(1, 2, 3);
    for v in 1..=7u64 {
        cluster
            .invoke_and_wait(
                cfg.client_pid(0),
                Msg::InvokeWrite { value: v },
                Duration::from_secs(30),
            )
            .expect("write");
    }
    let ev = cluster
        .invoke_and_wait(cfg.client_pid(1), Msg::InvokeRead, Duration::from_secs(30))
        .expect("read");
    let thr_final = match ev {
        ClientEvent::ReadDone { value, .. } => value,
        other => panic!("unexpected {other:?}"),
    };
    cluster.shutdown();

    assert_eq!(sim_final, 7);
    assert_eq!(thr_final, 7);
}

/// Collects `(sender, seq)` for every delivered message.
struct Sink;

impl Automaton<u64, (ProcessId, u64)> for Sink {
    fn on_message(&mut self, from: ProcessId, msg: u64, ctx: &mut Ctx<'_, u64, (ProcessId, u64)>) {
        if from != ENV {
            ctx.output((from, msg));
        }
    }
}

/// On an ENV kick carrying `n`, fires a burst of `n` sequenced messages
/// at the sink.
struct Source;

impl Automaton<u64, (ProcessId, u64)> for Source {
    fn on_message(&mut self, from: ProcessId, msg: u64, ctx: &mut Ctx<'_, u64, (ProcessId, u64)>) {
        if from == ENV {
            for seq in 0..msg {
                ctx.send(0, seq);
            }
        }
    }
}

/// Run `bursts[i]` messages from source `i + 1` to the sink at pid 0 and
/// return the per-sender delivery order observed by the sink.
fn observed_order(backend: Backend, bursts: &[u64], seed: u64) -> BTreeMap<ProcessId, Vec<u64>> {
    let mut procs: Vec<Box<dyn Automaton<u64, (ProcessId, u64)>>> = vec![Box::new(Sink)];
    for _ in bursts {
        procs.push(Box::new(Source));
    }
    let mut sub = AnySubstrate::spawn(backend, procs, &SubstrateConfig::seeded(seed));
    for (i, &n) in bursts.iter().enumerate() {
        sub.inject(i + 1, n);
    }
    let expected: u64 = bursts.iter().sum();
    let mut seen: BTreeMap<ProcessId, Vec<u64>> = BTreeMap::new();
    let mut got = 0u64;
    sub.pump_until(u64::MAX, 50, &mut |_time, _pid, (from, seq)| {
        seen.entry(from).or_default().push(seq);
        got += 1;
        (got >= expected).then_some(())
    });
    sub.stop();
    seen
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8 })]

    /// Per-sender FIFO: whatever the interleaving across senders, each
    /// sender's messages arrive in send order — on both substrates.
    #[test]
    fn per_sender_fifo_holds_on_both_substrates(
        bursts in collection::vec(1u64..20, 1..4),
        seed in 0u64..1000,
    ) {
        for backend in [Backend::Sim, Backend::Threaded] {
            let seen = observed_order(backend, &bursts, seed);
            for (i, &n) in bursts.iter().enumerate() {
                let order = seen.get(&(i + 1)).cloned().unwrap_or_default();
                let expected: Vec<u64> = (0..n).collect();
                prop_assert_eq!(
                    &order, &expected,
                    "{:?}: sender {} out of order", backend, i + 1
                );
            }
        }
    }

    /// Same seed, same sequential workload → identical client-visible
    /// outcomes on the simulator and on real threads.
    #[test]
    fn same_seed_same_outcomes_on_both_substrates(
        ops in collection::vec(
            (0usize..2, prop_oneof![(1u64..1000).prop_map(Op::Write), Just(Op::Read)]),
            1..10,
        ),
        seed in 0u64..1000,
    ) {
        let run = |backend: Backend| {
            let mut c = RegisterCluster::bounded(1)
                .clients(2)
                .seed(seed)
                .backend(backend)
                .build_any();
            let mut outcomes: Vec<(char, u64)> = Vec::new();
            for &(ci, op) in &ops {
                let pid = c.client(ci);
                match op {
                    Op::Write(v) => outcomes.push(('w', u64::from(c.write(pid, v).is_ok()))),
                    Op::Read => outcomes.push(('r', c.read(pid).map(|r| r.value).unwrap_or(u64::MAX))),
                }
            }
            assert!(c.check_history().is_ok(), "{backend:?} history irregular");
            c.stop();
            outcomes
        };
        prop_assert_eq!(run(Backend::Sim), run(Backend::Threaded));
    }
}

#[test]
fn threaded_crash_mid_operation_still_terminates() {
    // Crash an honest server while a write is in flight on the threaded
    // backend. With n = 6 and f = 1 the five surviving servers still form
    // the n - f quorum, so the retrying client must complete the write
    // (possibly after a deadline-triggered retry) rather than hang.
    let mut c = RegisterCluster::bounded(1)
        .clients(1)
        .seed(17)
        .retry(RetryPolicy::chaos())
        .build_threaded();
    let w = c.client(0);
    c.write(w, 1).expect("clean write before the crash");
    c.invoke_write(w, 2);
    c.sim.crash(0);
    let ev = c.await_client(w).expect("write terminates despite the crash");
    assert!(matches!(ev, ClientEvent::WriteDone { value: 2, .. }), "unexpected {ev:?}");
    let got = c.read(w).expect("read terminates on the 5-server quorum");
    assert_eq!(got.value, 2);
    assert!(c.check_history().is_ok(), "crash must not break regularity");
    c.stop();
}

/// One full chaos run on the simulator: the fired nemesis log, every
/// client-visible op outcome, the final read, and the final clock.
fn chaos_trace(seed: u64) -> (Vec<(u64, String)>, Vec<String>, u64, u64) {
    let mut c =
        RegisterCluster::bounded(1).clients(2).seed(seed).retry(RetryPolicy::chaos()).build();
    let opts = NemesisOpts {
        servers: c.cfg.n,
        total_procs: c.cfg.n + 2,
        horizon: 6_000,
        ..NemesisOpts::default()
    };
    let schedule = NemesisSchedule::random(seed, &opts);
    let cfg = c.cfg;
    let sys = c.sys.clone();
    let make_honest: AutomatonFactory<M, E> = Box::new(move |_pid| {
        Box::new(Server::<B>::new(sys.clone(), cfg)) as Box<dyn Automaton<M, E>>
    });
    let sys_g = c.sys.clone();
    let garbage = Box::new(move |rng: &mut StdRng| random_message::<B>(&sys_g, &cfg, rng));
    let mut runner: NemesisRunner<M, E> =
        NemesisRunner::new(schedule, make_honest, None, None, garbage);

    let (w, r) = (c.client(0), c.client(1));
    let mut outcomes = Vec::new();
    let mut value = 0u64;
    while !runner.done() && value < 200 {
        let before = c.now();
        runner.fire_due(&mut c.sim);
        value += 1;
        outcomes.push(format!("{:?}", c.write_outcome(w, value)));
        outcomes.push(format!("{:?}", c.read_outcome(r)));
        if c.now() == before && !runner.done() {
            runner.fire_next(&mut c.sim);
        }
    }
    let final_read = c.read(r).map(|ok| ok.value).unwrap_or(u64::MAX);
    let log = runner.log.iter().map(|&(t, k)| (t, k.to_string())).collect();
    let now = c.now();
    c.stop();
    (log, outcomes, final_read, now)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 3 })]

    /// The nemesis is part of the deterministic closure: the same seed and
    /// the same schedule replay to the identical fired-event sequence, the
    /// identical per-op outcomes, and the identical final state.
    #[test]
    fn nemesis_same_seed_same_schedule_is_deterministic(seed in 0u64..100) {
        let a = chaos_trace(seed);
        let b = chaos_trace(seed);
        prop_assert!(!a.0.is_empty(), "schedule fired no events");
        prop_assert!(a.1.len() >= 2, "no ops ran");
        prop_assert_eq!(a.0, b.0, "nemesis event sequences diverged");
        prop_assert_eq!(a.1, b.1, "op outcome sequences diverged");
        prop_assert_eq!((a.2, a.3), (b.2, b.3), "final read / clock diverged");
    }
}

/// On an ENV kick carrying `n`, fires `n` sequenced messages at the sink
/// on pid 0 (the possibly-faulted channel), then one completion marker at
/// the sink on pid 1 (always clean) — so the marker's arrival proves the
/// sender finished routing the whole volley, drops included.
struct Volley;

impl Automaton<u64, (ProcessId, u64)> for Volley {
    fn on_message(&mut self, from: ProcessId, msg: u64, ctx: &mut Ctx<'_, u64, (ProcessId, u64)>) {
        if from == ENV {
            for seq in 0..msg {
                ctx.send(0, seq);
            }
            ctx.send(1, u64::MAX);
        }
    }
}

/// Run a `volley`-message burst over the faulted channel `(2, 0)` and
/// return `(sent, delivered, dropped)` plus the sink-0 delivery count.
fn fault_cell(
    backend: Backend,
    fault: LinkFault,
    volley: u64,
    expect_sink: u64,
) -> (u64, u64, u64, u64) {
    let procs: Vec<Box<dyn Automaton<u64, (ProcessId, u64)>>> =
        vec![Box::new(Sink), Box::new(Sink), Box::new(Volley)];
    let mut sub = AnySubstrate::spawn(backend, procs, &SubstrateConfig::seeded(9));
    sub.set_link_fault(2, 0, Some(fault));
    sub.inject(2, volley);
    let mut sink0 = 0u64;
    let mut marker = false;
    sub.pump_until(u64::MAX, 200, &mut |_t, pid, (_from, _seq)| {
        if pid == 0 {
            sink0 += 1;
        } else {
            marker = true;
        }
        (marker && sink0 >= expect_sink).then_some(())
    });
    let m = sub.metrics_snapshot();
    sub.stop();
    (m.messages_sent, m.messages_delivered, m.messages_dropped, sink0)
}

/// Link-fault accounting parity: a dropped message still counts as sent, a
/// duplicate is one send with two deliveries, and a delayed message is one
/// send with one delivery — identically on the simulator and on threads.
/// Fault rates of 0.0/1.0 make the cells deterministic even though the two
/// backends consume different RNG streams.
#[test]
fn link_fault_accounting_agrees_across_substrates() {
    let volley = 10u64;
    // (cell, fault, expected sink-0 deliveries)
    let cells = [
        ("drop", LinkFault::flaky(1.0, 0.0, 0), 0),
        ("dup", LinkFault::flaky(0.0, 1.0, 0), 2 * volley),
        ("delay", LinkFault::flaky(0.0, 0.0, 3), volley),
    ];
    for (name, fault, expect_sink) in cells {
        let sim = fault_cell(Backend::Sim, fault, volley, expect_sink);
        let thr = fault_cell(Backend::Threaded, fault, volley, expect_sink);
        assert_eq!(sim, thr, "{name}: (sent, delivered, dropped, sink) diverged across backends");
        // And both match the accounting contract in absolute terms: every
        // send is one of the ENV kick, the volley, or the marker.
        let (sent, delivered, dropped, sink0) = sim;
        assert_eq!(sent, volley + 2, "{name}: drops and dups must not distort the send count");
        assert_eq!(sink0, expect_sink, "{name}");
        // Delivered covers the ENV kick, the marker, and the surviving
        // volley (twice for duplicates); drops are counted separately.
        assert_eq!(delivered, expect_sink + 2, "{name}");
        assert_eq!(dropped, if name == "drop" { volley } else { 0 }, "{name}");
    }
}

/// One durable run under a scripted Crash → CrashRecover schedule:
/// blocking ops with a full settle between steps make the per-server
/// message order — and therefore every disk's byte content — a function
/// of the seed alone, on either backend. Returns the per-server disk
/// digests, the spec verdict, and the recovery (cure) log.
fn durable_recover_trace(
    backend: Backend,
    seed: u64,
) -> (Vec<u64>, Result<(), String>, Vec<ProcessId>) {
    use sbft::net::NemesisEvent;
    use sbft::storage::DiskFault;
    let mut c =
        RegisterCluster::bounded(1).clients(2).durable().seed(seed).backend(backend).build_any();
    let (w, r) = (c.client(0), c.client(1));
    let schedule = NemesisSchedule::scripted(vec![
        (0, NemesisEvent::Crash(0)),
        (1, NemesisEvent::CrashRecover { pid: 0, fault: DiskFault::LostSuffix }),
        (2, NemesisEvent::Crash(2)),
        (3, NemesisEvent::CrashRecover { pid: 2, fault: DiskFault::StaleSnapshot }),
    ]);
    let mut runner =
        c.nemesis_runner(schedule, Vec::new(), sbft::register::adversary::ByzStrategy::Silent);
    for v in 1..=6u64 {
        c.write(w, v).unwrap();
    }
    c.settle(200_000);
    // Crash 0, write through the gap, reboot it from its damaged disk.
    runner.fire_next(&mut c.sim);
    c.settle(200_000);
    for v in 7..=9u64 {
        c.write(w, v).unwrap();
    }
    c.settle(200_000);
    runner.fire_next(&mut c.sim);
    c.settle(200_000);
    // Same dance for server 2 with a different fault kind.
    runner.fire_next(&mut c.sim);
    c.settle(200_000);
    for v in 10..=12u64 {
        c.write(w, v).unwrap();
    }
    c.settle(200_000);
    runner.fire_next(&mut c.sim);
    c.settle(200_000);
    for v in 13..=20u64 {
        c.write(w, v).unwrap();
    }
    let got = c.read(r).expect("read terminates after recoveries").value;
    assert_eq!(got, 20, "{backend:?}");
    c.settle(200_000);
    let digests = c.disks.as_ref().expect("durable cluster has disks").digests();
    let verdict = c.check_history().map_err(|e| format!("{e:?}"));
    let cures = runner.cures.iter().map(|&(_, pid)| pid).collect();
    c.stop();
    (digests, verdict, cures)
}

/// Satellite of the durability work: an identical seed and an identical
/// CrashRecover schedule leave byte-identical recovered state (per-server
/// disk digests) and the identical spec verdict on the simulator and on
/// real threads.
#[test]
fn crash_recover_parity_across_substrates() {
    for seed in [5u64, 23] {
        let (sim_digests, sim_verdict, sim_cures) = durable_recover_trace(Backend::Sim, seed);
        let (thr_digests, thr_verdict, thr_cures) = durable_recover_trace(Backend::Threaded, seed);
        assert_eq!(sim_digests, thr_digests, "seed {seed}: recovered disks diverged");
        assert_eq!(sim_verdict, thr_verdict, "seed {seed}: spec verdicts diverged");
        assert!(sim_verdict.is_ok(), "seed {seed}: {sim_verdict:?}");
        assert_eq!(sim_cures, vec![0, 2], "seed {seed}: recovery log wrong");
        assert_eq!(sim_cures, thr_cures, "seed {seed}: recovery logs diverged");
    }
}

#[test]
fn datalink_provides_fifo_for_the_register_assumption() {
    // The register assumes reliable FIFO channels; the data-link builds
    // them from lossy non-FIFO ones. End to end: a corrupted link still
    // delivers the stream's clean FIFO suffix.
    let payloads: Vec<u64> = (500..560).collect();
    let rep = DatalinkSim::converge_report(4, 11, &payloads, 50_000_000);
    assert!(rep.fifo_suffix_ok, "{rep:?}");
}
