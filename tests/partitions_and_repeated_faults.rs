//! Partition tolerance and repeated-transient-fault behaviour.
//!
//! The paper's channels are reliable-but-asynchronous: a network partition
//! is just a long delay, so operations issued *during* a partition that
//! hides a quorum must stall — and complete untouched once the partition
//! heals. Separately, Definition 1 speaks of one transient burst; these
//! tests check the practically relevant iteration: fault → stabilize →
//! fault → stabilize, indefinitely.

use sbft::net::CorruptionSeverity;
use sbft::register::cluster::{OpError, RegisterCluster};
use sbft::register::messages::ClientEvent;

/// Writes cannot complete while a majority of servers is unreachable, and
/// complete as soon as the partition heals.
#[test]
fn operations_stall_during_partition_and_finish_after_heal() {
    let mut c = RegisterCluster::bounded(1).clients(2).seed(11).build();
    let (w, r) = (c.client(0), c.client(1));
    c.write(w, 1).unwrap();

    // Cut servers {2,3,4,5} away from both clients: only 2 servers
    // reachable < quorum 5.
    let far: Vec<usize> = vec![2, 3, 4, 5];
    let clients: Vec<usize> = vec![w, r];
    c.sim.partition(&clients, &far);

    c.invoke_write(w, 2);
    // Drain everything deliverable: the write must NOT complete.
    let ev = c.await_client(w);
    assert_eq!(ev, Err(OpError::Stuck), "write must stall behind the partition");

    // Heal: the buffered traffic flows and the same write completes.
    c.sim.heal(&clients, &far);
    let ev = c.await_client(w).expect("write completes after heal");
    assert!(matches!(ev, ClientEvent::WriteDone { value: 2, .. }));

    assert_eq!(c.read(r).unwrap().value, 2);
    c.settle(100_000);
    assert!(c.check_history().is_ok());
}

/// A partition that still leaves a quorum reachable is harmless.
#[test]
fn minority_partition_is_transparent() {
    let mut c = RegisterCluster::bounded(1).clients(2).seed(12).build();
    let (w, r) = (c.client(0), c.client(1));
    // Hide one server only: quorum 5 of the remaining 5 still works.
    c.sim.partition(&[w, r], &[0]);
    c.write(w, 5).unwrap();
    assert_eq!(c.read(r).unwrap().value, 5);
    c.sim.heal(&[w, r], &[0]);
    c.settle(100_000);
    assert!(c.check_history().is_ok());
}

/// Fault → stabilize → fault → stabilize, five rounds: every round's
/// suffix is regular (Definition 1 applied repeatedly — "transient faults
/// happen not too often to prevent convergence").
#[test]
fn repeated_transient_faults_each_restabilize() {
    let mut c = RegisterCluster::bounded(1).clients(2).seed(13).build();
    let (w, r) = (c.client(0), c.client(1));
    for round in 1..=5u64 {
        c.corrupt_everything(CorruptionSeverity::Heavy);
        // Assumption 1 per burst: the next write runs to completion.
        c.write(w, round * 100).unwrap_or_else(|e| panic!("round {round}: {e:?}"));
        let stable = c.now();
        for _ in 0..2 {
            let got = c.read(r).unwrap_or_else(|e| panic!("round {round}: {e:?}"));
            assert_eq!(got.value, round * 100, "round {round}");
        }
        c.settle(150_000);
        assert!(c.check_history_from(stable).is_ok(), "round {round} suffix must be regular");
    }
}

/// Corruption *during* a partition, healing later: the combination of the
/// two fault classes still stabilizes.
#[test]
fn corruption_inside_a_partition_heals_after_reconnection() {
    let mut c = RegisterCluster::bounded(1).clients(2).seed(14).build();
    let (w, r) = (c.client(0), c.client(1));
    c.write(w, 1).unwrap();

    let far = vec![3usize, 4, 5];
    c.sim.partition(&[w, r, 0, 1, 2], &far);
    // The far side's states rot while unreachable.
    c.corrupt_servers(&far, CorruptionSeverity::Adversarial);
    c.sim.heal(&[w, r, 0, 1, 2], &far);

    c.write(w, 2).unwrap();
    let stable = c.now();
    assert_eq!(c.read(r).unwrap().value, 2);
    c.settle(150_000);
    assert!(c.check_history_from(stable).is_ok());
}
