//! Determinism goldens: a `(topology, workload, seed)` triple reproduces
//! the exact same execution — message counts, event counts, timestamps,
//! histories. This property is what makes the adversarial schedules of
//! E1/E12 and every regression in this suite replayable.

use sbft::net::CorruptionSeverity;
use sbft::register::adversary::ByzStrategy;
use sbft::register::cluster::RegisterCluster;

fn fingerprint(seed: u64) -> (u64, u64, u64, String) {
    let mut c = RegisterCluster::bounded(1)
        .clients(3)
        .byzantine_tail(ByzStrategy::Adaptive)
        .seed(seed)
        .build();
    let (w, r) = (c.client(0), c.client(1));
    c.write(w, 1).unwrap();
    c.corrupt_everything(CorruptionSeverity::Heavy);
    c.write(w, 2).unwrap();
    let _ = c.read(r);
    let _ = c.read(c.client(2));
    c.settle(100_000);
    let hist: String = c
        .recorder
        .ops()
        .iter()
        .map(|o| format!("{:?}@{}..{:?}:{:?};", o.kind, o.invoked_at, o.returned_at, o.outcome))
        .collect();
    (c.now(), c.metrics().messages_sent, c.metrics().events_processed, hist)
}

#[test]
fn identical_seeds_produce_identical_executions() {
    for seed in [1u64, 7, 42] {
        let a = fingerprint(seed);
        let b = fingerprint(seed);
        assert_eq!(a, b, "seed {seed} must reproduce exactly");
    }
}

#[test]
fn different_seeds_produce_different_schedules() {
    let a = fingerprint(1);
    let b = fingerprint(2);
    assert_ne!((a.0, a.1), (b.0, b.1), "different seeds should explore different schedules");
}

/// A pinned golden: if this changes, the simulator's event ordering or the
/// protocol's message pattern changed — bump deliberately, never silently.
#[test]
fn golden_fault_free_roundtrip_message_count() {
    let mut c = RegisterCluster::bounded(1).seed(42).build();
    let w = c.client(0);
    c.write(w, 7).unwrap();
    c.read(c.client(1)).unwrap();
    // quickstart's documented figure: 2 injects + write (GET_TS 6 + TS 6 +
    // WRITE 6 + ACK 6) + read (FLUSH 6 + FACK 6 + READ 6 + REPLY 6 +
    // COMPLETE 6) = 56.
    assert_eq!(c.metrics().messages_sent, 56);
}
