//! KV store under client concurrency: different clients operating on
//! different (and the same) keys simultaneously, with key-level isolation
//! and per-key regularity.

use sbft::kv::{KvCluster, KvEvent};
use sbft::register::messages::{ClientEvent, Msg};

/// Drive two clients concurrently (manual pump) and return their terminal
/// events.
fn pump_two(
    store: &mut KvCluster<sbft::labels::BoundedLabeling>,
    a: (usize, u64, Option<u64>), // (client pid, key, Some(value)=put / None=get)
    b: (usize, u64, Option<u64>),
) -> Vec<(usize, KvEvent<sbft::register::Ts<sbft::labels::BoundedLabeling>>)> {
    use sbft::register::spec::OpKind;
    for &(pid, key, op) in [&a, &b] {
        let now = store.sim.now() + 1;
        match op {
            Some(v) => {
                store.recorders.entry(key).or_default().begin_with_intent(
                    pid,
                    OpKind::Write,
                    now,
                    Some(v),
                );
                store.sim.inject(pid, sbft::kv::KvMsg::new(key, Msg::InvokeWrite { value: v }));
            }
            None => {
                store.recorders.entry(key).or_default().begin(pid, OpKind::Read, now);
                store.sim.inject(pid, sbft::kv::KvMsg::new(key, Msg::InvokeRead));
            }
        }
    }
    let mut done = Vec::new();
    let mut budget = 500_000u64;
    while done.len() < 2 && budget > 0 {
        let Some(ev) = store.sim.step() else { break };
        budget -= 1;
        let (time, pid) = (ev.time, ev.pid);
        for out in ev.outputs {
            store.recorders.entry(out.key).or_default().complete(pid, time, &out.inner);
            if pid == a.0 || pid == b.0 {
                done.push((pid, out));
            }
        }
    }
    done
}

#[test]
fn concurrent_puts_on_different_keys_are_isolated() {
    let mut store = KvCluster::bounded(1).clients(2).seed(21).build();
    let (a, b) = (store.client(0), store.client(1));
    let evs = pump_two(&mut store, (a, 1, Some(100)), (b, 2, Some(200)));
    assert_eq!(evs.len(), 2, "both concurrent puts must complete");
    assert_eq!(store.get(a, 2).unwrap(), 200);
    assert_eq!(store.get(b, 1).unwrap(), 100);
    assert!(store.check_all_histories().is_ok());
}

#[test]
fn concurrent_put_and_get_on_the_same_key_satisfy_regularity() {
    for seed in 0..5 {
        let mut store = KvCluster::bounded(1).clients(2).seed(seed).build();
        let (a, b) = (store.client(0), store.client(1));
        store.put(a, 7, 1).unwrap();
        let evs = pump_two(&mut store, (a, 7, Some(2)), (b, 7, None));
        assert_eq!(evs.len(), 2, "seed {seed}");
        // The concurrent read returned either the old or the new value.
        let read_val = evs
            .iter()
            .find_map(|(pid, ev)| match (&ev.inner, *pid == b) {
                (ClientEvent::ReadDone { value, .. }, true) => Some(*value),
                _ => None,
            })
            .expect("the get must return a value");
        assert!(read_val == 1 || read_val == 2, "seed {seed}: got {read_val}");
        assert!(store.check_all_histories().is_ok(), "seed {seed}");
    }
}

#[test]
fn concurrent_writers_across_shards_stay_regular() {
    let mut store = KvCluster::bounded(1).shards(4).clients(2).seed(44).build();
    let (a, b) = (store.client(0), store.client(1));
    // Find two keys the router places on different shards (any small scan
    // succeeds: the Fibonacci hash spreads consecutive keys widely).
    let key_a = 0u64;
    let key_b = (1..64u64)
        .find(|k| store.router.shard_of(*k) != store.router.shard_of(key_a))
        .expect("some key must land on another shard");
    // Truly concurrent puts served by two disjoint server groups.
    let evs = pump_two(&mut store, (a, key_a, Some(111)), (b, key_b, Some(222)));
    assert_eq!(evs.len(), 2, "both cross-shard puts must complete");
    assert_eq!(store.get(a, key_b).unwrap(), 222);
    assert_eq!(store.get(b, key_a).unwrap(), 111);
    // And a same-key race on the sharded store: regularity still holds.
    let evs = pump_two(&mut store, (a, key_a, Some(7)), (b, key_a, None));
    assert_eq!(evs.len(), 2, "same-key put/get race must complete");
    assert!(store.check_all_histories().is_ok());
    let verdicts = store.check_per_shard();
    assert!(verdicts.len() >= 2, "keys must span at least two shards: {verdicts:?}");
    assert!(verdicts.values().all(|v| v.is_regular()), "{verdicts:?}");
}

#[test]
fn interleaved_keys_under_churn_stay_regular() {
    let mut store = KvCluster::bounded(1).clients(2).seed(33).build();
    let (a, b) = (store.client(0), store.client(1));
    for round in 0..6u64 {
        let ka = round % 3;
        let kb = (round + 1) % 3;
        let evs = pump_two(
            &mut store,
            (a, ka, Some(round * 10)),
            (b, kb, if round % 2 == 0 { None } else { Some(round * 100) }),
        );
        assert_eq!(evs.len(), 2, "round {round}");
    }
    assert!(store.check_all_histories().is_ok());
}
