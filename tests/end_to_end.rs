//! Cross-crate integration tests: the assembled register against the
//! specification checker, across seeds, fault patterns, and cluster sizes.

use sbft::net::CorruptionSeverity;
use sbft::register::adversary::ByzStrategy;
use sbft::register::cluster::{Op, OpError, RegisterCluster};

/// Fault-free operation across many seeds: every op terminates, every
/// read returns the latest value, history always regular.
#[test]
fn fault_free_many_seeds() {
    for seed in 0..20 {
        let mut c = RegisterCluster::bounded(1).clients(2).seed(seed).build();
        let (w, r) = (c.client(0), c.client(1));
        for v in 1..=5 {
            c.write(w, v).unwrap_or_else(|e| panic!("seed {seed} write {v}: {e:?}"));
            let got = c.read(r).unwrap_or_else(|e| panic!("seed {seed} read {v}: {e:?}"));
            assert_eq!(got.value, v, "seed {seed}");
        }
        c.settle(100_000);
        assert!(c.check_history().is_ok(), "seed {seed}");
    }
}

/// Every Byzantine strategy × several seeds: termination + regularity.
#[test]
fn byzantine_sweep_many_seeds() {
    for strategy in ByzStrategy::all() {
        for seed in 0..5 {
            let mut c =
                RegisterCluster::bounded(1).byzantine_tail(strategy).clients(2).seed(seed).build();
            let (w, r) = (c.client(0), c.client(1));
            for v in 1..=3 {
                c.write(w, v).unwrap_or_else(|e| panic!("{strategy:?}/{seed}: {e:?}"));
                let got = c.read(r).unwrap_or_else(|e| panic!("{strategy:?}/{seed}: {e:?}"));
                assert_eq!(got.value, v, "{strategy:?}/{seed}");
            }
            c.settle(100_000);
            assert!(c.check_history().is_ok(), "{strategy:?}/{seed}");
        }
    }
}

/// f = 2 (n = 11) with mixed hostile servers.
#[test]
fn larger_cluster_f2() {
    let mut c = RegisterCluster::bounded(2)
        .byzantine(9, ByzStrategy::Silent)
        .byzantine(10, ByzStrategy::PoisonLabels)
        .clients(2)
        .seed(3)
        .build();
    let (w, r) = (c.client(0), c.client(1));
    for v in 1..=4 {
        c.write(w, v).unwrap();
        assert_eq!(c.read(r).unwrap().value, v);
    }
    c.settle(200_000);
    assert!(c.check_history().is_ok());
}

/// Total corruption at every severity: the suffix after the first
/// complete write is always regular (Theorem 2).
#[test]
fn stabilization_from_every_severity() {
    for severity in
        [CorruptionSeverity::Light, CorruptionSeverity::Heavy, CorruptionSeverity::Adversarial]
    {
        for seed in 0..5 {
            let mut c = RegisterCluster::bounded(1).clients(2).seed(seed).build();
            let (w, r) = (c.client(0), c.client(1));
            c.write(w, 1).unwrap();
            c.corrupt_everything(severity);
            // Transitory reads terminate (maybe aborting).
            for _ in 0..2 {
                match c.read(r) {
                    Ok(_) | Err(OpError::Aborted) => {}
                    Err(OpError::Stuck) => panic!("{severity:?}/{seed}: read stuck"),
                }
            }
            c.write(w, 2).unwrap_or_else(|e| panic!("{severity:?}/{seed}: {e:?}"));
            let stable = c.now();
            for _ in 0..3 {
                let got = c.read(r).unwrap_or_else(|e| panic!("{severity:?}/{seed}: {e:?}"));
                assert_eq!(got.value, 2, "{severity:?}/{seed}");
            }
            c.settle(200_000);
            assert!(c.check_history_from(stable).is_ok(), "{severity:?}/{seed}");
        }
    }
}

/// Corruption combined with Byzantine servers: the full multi-fault model.
#[test]
fn corruption_plus_byzantine() {
    for seed in 0..5 {
        let mut c = RegisterCluster::bounded(1)
            .byzantine_tail(ByzStrategy::StaleReplay)
            .clients(2)
            .seed(seed)
            .build();
        let (w, r) = (c.client(0), c.client(1));
        c.write(w, 1).unwrap();
        c.corrupt_everything(CorruptionSeverity::Heavy);
        c.write(w, 2).unwrap();
        let stable = c.now();
        assert_eq!(c.read(r).unwrap().value, 2, "seed {seed}");
        c.settle(200_000);
        assert!(c.check_history_from(stable).is_ok(), "seed {seed}");
    }
}

/// Reader crash mid-operation: other clients are unaffected (clients may
/// crash freely in the model — no bound on faulty clients).
#[test]
fn reader_crash_does_not_block_others() {
    let mut c = RegisterCluster::bounded(1).clients(3).seed(4).build();
    let (w, r1, r2) = (c.client(0), c.client(1), c.client(2));
    c.write(w, 1).unwrap();
    // r1 starts a read and crashes mid-flight.
    c.invoke_read(r1);
    for _ in 0..3 {
        c.sim.step();
    }
    c.sim.crash(r1);
    // The system keeps serving everyone else.
    c.write(w, 2).unwrap();
    assert_eq!(c.read(r2).unwrap().value, 2);
    c.settle(100_000);
    // The crashed client's op stays incomplete; the checker ignores it.
    assert!(c.check_history().is_ok());
}

/// Concurrent mixed workload via run_concurrent: all ops terminate and
/// regularity holds.
#[test]
fn concurrent_mixed_workload() {
    for seed in 0..10 {
        let mut c = RegisterCluster::bounded(1).clients(4).seed(seed).build();
        c.write(c.client(0), 1).unwrap();
        let evs = c.run_concurrent(&[
            (0, Op::Write(10)),
            (1, Op::Write(20)),
            (2, Op::Read),
            (3, Op::Read),
        ]);
        assert!(evs.iter().all(|e| e.is_some()), "seed {seed}: {evs:?}");
        c.settle(200_000);
        assert!(c.check_history().is_ok(), "seed {seed}");
    }
}

/// The unbounded-label instantiation of the same protocol works in the
/// clean-state world (it only loses stabilization, per E6).
#[test]
fn unbounded_instantiation_clean_state() {
    let mut c = RegisterCluster::unbounded(1).clients(2).seed(5).build();
    let (w, r) = (c.client(0), c.client(1));
    for v in 1..=5 {
        c.write(w, v).unwrap();
        assert_eq!(c.read(r).unwrap().value, v);
    }
    assert!(c.check_history().is_ok());
}
