//! Per-link FIFO under batching, end to end on both substrates: coalescing
//! messages into wire frames must never reorder deliveries within a
//! directed link, and a batched run must observe exactly the per-sender
//! order an unbatched run does.

use sbft::net::{
    AnySubstrate, Automaton, Backend, BatchPolicy, Ctx, ProcessId, Substrate, SubstrateConfig, ENV,
};

const BURST: u64 = 10;
const ROUNDS: u64 = 5;
const SENDERS: usize = 2;
const COLLECTOR: ProcessId = SENDERS;

type Out = (ProcessId, u64);

/// On each environment command, fans a numbered burst at the collector.
struct Fan;
impl Automaton<u64, Out> for Fan {
    fn on_message(&mut self, from: ProcessId, msg: u64, ctx: &mut Ctx<'_, u64, Out>) {
        if from == ENV {
            for j in 0..BURST {
                ctx.send(COLLECTOR, msg + j);
            }
        }
    }
}

/// Emits every delivered message tagged with its sender.
struct Collect;
impl Automaton<u64, Out> for Collect {
    fn on_message(&mut self, from: ProcessId, msg: u64, ctx: &mut Ctx<'_, u64, Out>) {
        ctx.output((from, msg));
    }
}

/// What each sender's link must deliver, in order: its bursts back to back.
fn expected(sender: usize) -> Vec<u64> {
    (0..ROUNDS)
        .flat_map(|round| {
            let base = round * 1_000 + sender as u64 * 500;
            base..base + BURST
        })
        .collect()
}

/// Run the fan-in under `policy` and return the collector's observed
/// per-sender delivery orders.
fn per_sender_orders(backend: Backend, policy: BatchPolicy) -> Vec<Vec<u64>> {
    let procs: Vec<Box<dyn Automaton<u64, Out>>> =
        vec![Box::new(Fan), Box::new(Fan), Box::new(Collect)];
    let cfg = SubstrateConfig::seeded(7).with_batching(policy);
    let mut sub = AnySubstrate::spawn(backend, procs, &cfg);
    for round in 0..ROUNDS {
        for sender in 0..SENDERS {
            sub.inject(sender, round * 1_000 + sender as u64 * 500);
        }
    }
    let want = SENDERS as u64 * ROUNDS * BURST;
    let mut orders: Vec<Vec<u64>> = vec![Vec::new(); SENDERS];
    let mut seen = 0u64;
    // The visit closure records every output; `Some` only on the last one,
    // so no sibling outputs of a batched delivery are dropped mid-frame.
    sub.pump_until(1_000_000, 200, &mut |_, _, (from, v): Out| {
        orders[from].push(v);
        seen += 1;
        (seen >= want).then_some(())
    });
    sub.stop();
    orders
}

#[test]
fn batched_and_unbatched_deliveries_observe_identical_per_link_order() {
    for backend in [Backend::Sim, Backend::Threaded] {
        let plain = per_sender_orders(backend, BatchPolicy::disabled());
        let batched = per_sender_orders(backend, BatchPolicy::new(4, 2));
        for sender in 0..SENDERS {
            assert_eq!(
                plain[sender],
                expected(sender),
                "{backend:?}: unbatched link {sender} -> collector reordered"
            );
            assert_eq!(
                batched[sender],
                expected(sender),
                "{backend:?}: batched link {sender} -> collector reordered"
            );
            assert_eq!(
                plain[sender], batched[sender],
                "{backend:?}: batching changed link {sender}'s delivery order"
            );
        }
    }
}
