//! MWMR in action: three writers racing, one reader watching.
//!
//! Demonstrates the Section IV-D extension — `(label, writer-id)`
//! timestamps totally ordering concurrent writes (Lemma 8) — and the
//! union-graph fallback (Figure 2a line 15) that keeps reads decisive
//! while the server population is split across in-flight versions.
//!
//! ```text
//! cargo run --example multi_writer
//! ```

use sbft::labels::BoundedLabeling;
use sbft::net::DelayModel;
use sbft::register::cluster::{ClusterBuilder, RegisterCluster};
use sbft::register::config::ClusterConfig;
use sbft::register::messages::ClientEvent;
use sbft::register::reader::ReaderOptions;

fn main() {
    const WRITERS: usize = 3;
    const BURST: usize = 8;

    let cfg = ClusterConfig::stabilizing(1);
    let mut cluster: RegisterCluster<BoundedLabeling> =
        ClusterBuilder::new(cfg, BoundedLabeling::new(cfg.label_k()))
            .clients(WRITERS + 1)
            .seed(77)
            .delay(DelayModel::uniform(1, 40)) // wide asynchrony
            .reader_options(ReaderOptions::default())
            .build();
    let reader = cluster.client(WRITERS);

    cluster.write(cluster.client(0), 1).unwrap();

    // All writers burst concurrently; the reader loops.
    let mut left = [BURST; WRITERS];
    let mut next_val = 100u64;
    for (w, slot) in left.iter_mut().enumerate() {
        next_val += 1;
        cluster.invoke_write(cluster.client(w), next_val);
        *slot -= 1;
    }
    cluster.invoke_read(reader);

    let mut reads = 0;
    let mut unions = 0;
    let mut reader_done = false;
    let mut budget = 5_000_000u64;
    while (left.iter().any(|&l| l > 0) || !reader_done) && budget > 0 {
        let Some(ev) = cluster.sim.step() else { break };
        budget -= 1;
        let (time, pid) = (ev.time, ev.pid);
        for out in ev.outputs {
            cluster.recorder.complete(pid, time, &out);
            #[allow(clippy::needless_range_loop)] // w is matched against pid
            for w in 0..WRITERS {
                if pid == cluster.client(w) && out.is_write_end() && left[w] > 0 {
                    next_val += 1;
                    cluster.invoke_write(cluster.client(w), next_val);
                    left[w] -= 1;
                    break;
                }
            }
            if pid == reader {
                if let ClientEvent::ReadDone { value, via_union, .. } = &out {
                    reads += 1;
                    if *via_union {
                        unions += 1;
                        println!("[t={time:>6}] read {value}  (decided by the UNION graph)");
                    } else {
                        println!("[t={time:>6}] read {value}");
                    }
                }
                if left.iter().all(|&l| l == 0) {
                    reader_done = true;
                } else {
                    cluster.invoke_read(reader);
                }
            }
        }
    }
    cluster.settle(300_000);

    println!(
        "\n{} concurrent writers × {} writes; {} reads, {} via the union fallback",
        WRITERS, BURST, reads, unions
    );
    cluster.check_history().expect("MWMR regularity holds under full write concurrency");
    println!("MWMR regularity verified across {} operations", cluster.recorder.ops().len());
}
