//! Quickstart: a 6-server stabilizing BFT register, one write, one read.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use sbft::register::cluster::RegisterCluster;

fn main() {
    // n = 5f + 1 = 6 servers tolerate one Byzantine server; the cluster
    // builder wires servers, clients, and the simulated network.
    let mut cluster = RegisterCluster::bounded(1).seed(42).build();
    let writer = cluster.client(0);
    let reader = cluster.client(1);

    let ts = cluster.write(writer, 1234).expect("writes terminate (Lemma 1)");
    println!("wrote 1234 with bounded timestamp {ts:?}");

    let got = cluster.read(reader).expect("reads terminate (Lemma 6)");
    println!("read {} (witnessed at {:?}, union fallback: {})", got.value, got.ts, got.via_union);
    assert_eq!(got.value, 1234);

    cluster.check_history().expect("the recorded history satisfies MWMR regularity");
    println!(
        "history of {} operations verified regular; {} messages exchanged",
        cluster.recorder.ops().len(),
        cluster.metrics().messages_sent
    );
}
