//! Byzantine audit: run the register against every built-in Byzantine
//! server strategy and show that operations keep terminating, values stay
//! correct, and the history stays regular — with `f` of the `5f + 1`
//! servers actively hostile.
//!
//! ```text
//! cargo run --example byzantine_audit
//! ```

use sbft::register::adversary::ByzStrategy;
use sbft::register::cluster::RegisterCluster;

fn main() {
    println!("{:<16} {:>8} {:>8} {:>10} {:>9}", "strategy", "writes", "reads", "msgs", "regular");
    for (i, strategy) in ByzStrategy::all().into_iter().enumerate() {
        let mut cluster = RegisterCluster::bounded(1)
            .byzantine_tail(strategy)
            .clients(2)
            .seed(1000 + i as u64)
            .build();
        let writer = cluster.client(0);
        let reader = cluster.client(1);

        let mut writes = 0;
        let mut reads = 0;
        for v in 1..=10u64 {
            cluster.write(writer, v).expect("writes terminate under any strategy");
            writes += 1;
            let got = cluster.read(reader).expect("reads terminate under any strategy");
            assert_eq!(got.value, v, "strategy {strategy:?} corrupted a read");
            reads += 1;
        }
        cluster.settle(100_000);
        let regular = cluster.check_history().is_ok();
        println!(
            "{:<16} {:>8} {:>8} {:>10} {:>9}",
            format!("{strategy:?}"),
            writes,
            reads,
            cluster.metrics().messages_sent,
            if regular { "yes" } else { "NO" }
        );
        assert!(regular, "strategy {strategy:?} broke regularity");
    }
    println!("\nall six Byzantine strategies absorbed at n = 5f + 1 = 6");
}
