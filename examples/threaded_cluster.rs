//! The same sans-IO automata on real OS threads, driven through the same
//! `RegisterCluster` scenario driver the simulator experiments use — the
//! only difference is `build_threaded()` instead of `build()`.
//!
//! ```text
//! cargo run --release --example threaded_cluster
//! ```

use std::time::Instant;

use sbft::register::cluster::{Op, RegisterCluster};

fn main() {
    const CLIENTS: usize = 4;
    const ROUNDS: u64 = 200;

    let mut cluster = RegisterCluster::bounded(1).clients(CLIENTS).seed(9).build_threaded();
    println!(
        "spawned {} server threads + {CLIENTS} client threads (backend: {:?})",
        cluster.cfg.n,
        cluster.backend()
    );

    let start = Instant::now();
    let mut total = 0usize;
    for round in 0..ROUNDS {
        // One concurrent operation per client, alternating write/read.
        let ops: Vec<(usize, Op)> = (0..CLIENTS)
            .map(|i| {
                let op = if (round + i as u64).is_multiple_of(2) {
                    Op::Write(((i as u64) << 32) | round)
                } else {
                    Op::Read
                };
                (i, op)
            })
            .collect();
        total += cluster.run_concurrent(&ops).iter().flatten().count();
    }
    let elapsed = start.elapsed();

    let metrics = cluster.metrics();
    println!(
        "{total} operations in {elapsed:?} — {:.0} ops/sec across {CLIENTS} concurrent clients",
        total as f64 / elapsed.as_secs_f64()
    );
    println!(
        "network: {} sent, {} delivered, {} events",
        metrics.messages_sent, metrics.messages_delivered, metrics.events_processed
    );
    if let Err(e) = cluster.check_history() {
        panic!("recorded history must be regular: {e:?}");
    }
    cluster.stop();
    assert_eq!(total as u64, CLIENTS as u64 * ROUNDS);
}
