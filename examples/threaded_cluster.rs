//! The same sans-IO automata on real OS threads: every server and client
//! is a thread, channels are crossbeam FIFO queues, and four application
//! threads drive operations concurrently at wall-clock speed.
//!
//! ```text
//! cargo run --release --example threaded_cluster
//! ```

use std::time::{Duration, Instant};

use sbft::labels::{BoundedLabeling, MwmrLabeling};
use sbft::net::{Automaton, ThreadedCluster};
use sbft::register::client::Client;
use sbft::register::config::ClusterConfig;
use sbft::register::messages::{ClientEvent, Msg};
use sbft::register::reader::ReaderOptions;
use sbft::register::server::Server;
use sbft::register::Ts;

type B = BoundedLabeling;
type M = Msg<Ts<B>>;
type E = ClientEvent<Ts<B>>;

fn main() {
    const CLIENTS: usize = 4;
    const OPS_PER_CLIENT: u64 = 200;

    let cfg = ClusterConfig::stabilizing(1);
    let sys = MwmrLabeling::new(BoundedLabeling::new(cfg.label_k()));

    let mut procs: Vec<Box<dyn Automaton<M, E>>> = Vec::new();
    for _ in 0..cfg.n {
        procs.push(Box::new(Server::<B>::new(sys.clone(), cfg)));
    }
    for i in 0..CLIENTS {
        let pid = cfg.client_pid(i);
        procs.push(Box::new(Client::<B>::new(sys.clone(), cfg, pid as u32, ReaderOptions::default())));
    }
    let cluster: ThreadedCluster<M, E> = ThreadedCluster::spawn(procs, 9);
    println!("spawned {} server threads + {CLIENTS} client threads", cfg.n);

    let start = Instant::now();
    let total: usize = std::thread::scope(|s| {
        (0..CLIENTS)
            .map(|i| {
                let cluster = &cluster;
                let pid = cfg.client_pid(i);
                s.spawn(move || {
                    let mut done = 0;
                    for op in 0..OPS_PER_CLIENT {
                        let msg = if op % 2 == 0 {
                            Msg::InvokeWrite { value: ((i as u64) << 32) | op }
                        } else {
                            Msg::InvokeRead
                        };
                        if cluster.invoke_and_wait(pid, msg, Duration::from_secs(30)).is_some() {
                            done += 1;
                        }
                    }
                    done
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .sum()
    });
    let elapsed = start.elapsed();
    cluster.shutdown();

    println!(
        "{total} operations in {:?} — {:.0} ops/sec across {CLIENTS} concurrent clients",
        elapsed,
        total as f64 / elapsed.as_secs_f64()
    );
    assert_eq!(total as u64, CLIENTS as u64 * OPS_PER_CLIENT);
}
