//! A miniature self-healing cloud object store: every key is an
//! independent MWMR regular register of the paper's protocol, all keys
//! multiplexed over one `n = 5f + 1` server pool.
//!
//! ```text
//! cargo run --example kv_store
//! ```

use sbft::kv::KvCluster;
use sbft::net::CorruptionSeverity;

fn main() {
    let mut store = KvCluster::bounded(1).clients(2).seed(2026).build();
    let alice = store.client(0);
    let bob = store.client(1);

    // A handful of objects.
    let objects = [(1u64, 0xA11CE), (2, 0xB0B), (3, 0xCAFE), (4, 0xD00D)];
    for &(key, value) in &objects {
        store.put(alice, key, value).expect("put terminates");
        println!("[t={:>6}] alice put {key} -> {value:#x}", store.now());
    }
    for &(key, value) in &objects {
        let got = store.get(bob, key).expect("get terminates");
        assert_eq!(got, value);
        println!("[t={:>6}] bob   got {key} -> {got:#x}", store.now());
    }

    // The outage: all nodes, clients and channels scrambled at once.
    store.corrupt_everything(CorruptionSeverity::Heavy);
    println!("[t={:>6}] *** transient fault across the whole store ***", store.now());

    // One write per key re-stabilizes that key (Assumption 1, pointwise).
    for &(key, value) in &objects {
        store.put(alice, key, value + 1).expect("post-fault put completes");
    }
    let stable = store.now();
    for &(key, value) in &objects {
        let got = store.get(bob, key).expect("post-fault get returns");
        assert_eq!(got, value + 1);
        println!("[t={:>6}] bob   got {key} -> {got:#x} (healed)", store.now());
    }
    store.check_all_from(stable).expect("every key's post-stabilization suffix is regular");
    println!("all {} keys verified regular after self-healing", objects.len());
}
