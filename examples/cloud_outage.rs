//! Cloud-outage scenario: the motivating story of the paper's
//! introduction. A storage cluster suffers a *transient* event — bit
//! flips during an internal migration, stale messages replayed by a
//! recovering switch — that arbitrarily corrupts every server's memory,
//! every client's bookkeeping, and the content of every channel. No
//! human intervenes and nothing is restarted: the register heals itself
//! by the end of the first post-fault write.
//!
//! ```text
//! cargo run --example cloud_outage
//! ```

use sbft::net::CorruptionSeverity;
use sbft::register::cluster::{OpError, RegisterCluster};

fn main() {
    let mut cluster = RegisterCluster::bounded(1).clients(3).seed(2026).build();
    let writer = cluster.client(0);
    let alice = cluster.client(1);
    let bob = cluster.client(2);

    // Normal operation before the outage.
    cluster.write(writer, 100).unwrap();
    println!("[t={:>6}] wrote 100 — steady state", cluster.now());
    println!("[t={:>6}] alice reads {}", cluster.now(), cluster.read(alice).unwrap().value);

    // The outage: every process state and every channel scrambled.
    cluster.corrupt_everything(CorruptionSeverity::Adversarial);
    println!("[t={:>6}] *** transient fault: all state + channels corrupted ***", cluster.now());

    // During the transitory phase reads may abort (the protocol detects
    // that no value has enough honest witnesses) — that is the correct
    // behaviour, not a failure.
    for (name, client) in [("alice", alice), ("bob", bob)] {
        match cluster.read(client) {
            Ok(ok) => println!(
                "[t={:>6}] {name} reads {} during the transitory phase",
                cluster.now(),
                ok.value
            ),
            Err(OpError::Aborted) => println!(
                "[t={:>6}] {name}'s read ABORTS — servers still transitory (expected)",
                cluster.now()
            ),
            Err(OpError::Stuck) => unreachable!("reads terminate (Lemma 6)"),
        }
    }

    // Assumption 1: the first post-fault write runs to completion. Its
    // completion is the stabilization point (Theorem 2).
    cluster.write(writer, 200).expect("first post-fault write completes");
    let stable_from = cluster.now();
    println!("[t={:>6}] wrote 200 — stabilization point reached", cluster.now());

    // Every subsequent read is regular again.
    for (name, client) in [("alice", alice), ("bob", bob), ("alice", alice)] {
        let got = cluster.read(client).expect("post-stabilization reads return");
        println!("[t={:>6}] {name} reads {} (union: {})", cluster.now(), got.value, got.via_union);
        assert_eq!(got.value, 200);
    }

    cluster
        .check_history_from(stable_from)
        .expect("the suffix after the first complete write is regular");
    println!(
        "suffix regularity verified — {} aborts recorded during the transitory phase",
        cluster.recorder.aborted_reads()
    );
}
