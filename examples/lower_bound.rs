//! The Theorem 1 lower bound, live: the same adversary — one Byzantine
//! server, one transiently corrupted server, one slow server — breaks a
//! TM_1R-class reader at `n = 5f` and is harmless at `n = 5f + 1`.
//!
//! ```text
//! cargo run --example lower_bound
//! ```

use sbft_bench::e1_lower_bound::scripted_run;

fn main() {
    println!("Theorem 1: no TM_1R protocol implements the register with n <= 5f.\n");
    for n in [5usize, 6] {
        println!("n = {n} servers, f = 1 (bound {}):", if n == 5 { "violated" } else { "met" });
        for slow in 0..(n - 2) {
            let run = scripted_run(n, slow, 7);
            println!(
                "  slow server s{slow}: read returned {:?} — {}",
                run.read_value,
                if run.violated {
                    "REGULARITY VIOLATED (corrupted value leaked)"
                } else {
                    "regular (latest write returned)"
                }
            );
        }
        println!();
    }
    println!("the extra (5f+1)-th server keeps a 2f+1 honest-current witness");
    println!("set inside every read quorum — exactly the margin the proof shows");
    println!("cannot exist at 5f.");
}
